// Package core implements the paper's contribution: staleness prediction
// signals that mark corpus traceroutes as likely out-of-date without
// issuing any measurements. Six techniques feed a single engine:
//
//	§4.1.2  BGP AS-path overlap monitoring (Bitmap outlier detection)
//	§4.1.3  BGP community change tracking
//	§4.1.4  duplicate-update burst correlation
//	§4.2.1  public-traceroute IP-subpath frequency shifts (modified z-score)
//	§4.2.2  inter-city border-router frequency shifts
//	§4.2.3  IXP membership changes
//
// plus §4.3's calibration (per-VP/per-signal TPR/TNR, refresh probability,
// Table 1 bootstrap ordering) and §4.3.2's signal revocation.
package core

import (
	"fmt"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// Technique identifies which monitor produced a signal; the rows of the
// paper's Table 2.
type Technique int

// Techniques.
const (
	TechBGPASPath Technique = iota
	TechBGPCommunity
	TechBGPBurst
	TechTraceSubpath
	TechTraceBorder
	TechIXPMembership
	numTechniques
)

// String names the technique with the paper's Table 2 labels.
func (t Technique) String() string {
	switch t {
	case TechBGPASPath:
		return "BGP AS-paths"
	case TechBGPCommunity:
		return "BGP communities"
	case TechBGPBurst:
		return "BGP update bursts"
	case TechTraceSubpath:
		return "Traceroute subpaths"
	case TechTraceBorder:
		return "Traceroute borders"
	case TechIXPMembership:
		return "Colocation changes"
	}
	return "unknown"
}

// IsBGP reports whether the technique consumes BGP feeds.
func (t Technique) IsBGP() bool {
	return t == TechBGPASPath || t == TechBGPCommunity || t == TechBGPBurst
}

// Signal is one staleness prediction signal: evidence that a specific
// portion (border span) of a corpus traceroute has changed.
type Signal struct {
	Technique Technique
	// Key is the corpus (src, dst) pair flagged as stale.
	Key traceroute.Key
	// MonitorID identifies the potential signal that fired, for
	// calibration bookkeeping.
	MonitorID int
	// WindowStart is the start of the signal-generation window (seconds).
	WindowStart int64
	// Borders are the indices into the corpus entry's border path that
	// the signal claims changed.
	Borders []int
	// Detail is a human-readable cause (an AS, community, or subpath).
	Detail string
	// Score is the detector's outlier score (z-score or bitmap distance).
	Score float64
	// VPCount is the number of BGP vantage points behind the signal
	// (tie-break attribute for Table 1).
	VPCount int
	// IPOverlap and ASOverlap describe how much of the traceroute the
	// triggering data overlaps (Table 1 attributes 1 and 2).
	IPOverlap, ASOverlap int
	// SameASVP / SameCityVP indicate vantage points co-located with the
	// traceroute source (Table 1 attributes 3-5).
	SameASVP, SameCityVP bool
	// Comm is the community behind a §4.1.3 signal (for Appendix B's
	// reputation learning); zero otherwise.
	Comm bgp.Community
}

// String renders a compact description.
func (s Signal) String() string {
	return fmt.Sprintf("%s: %s w=%d borders=%v %s", s.Technique, s.Key, s.WindowStart, s.Borders, s.Detail)
}

// Registration ties a potential signal (a monitor) to a corpus traceroute:
// the monitor watches the given border indices of that traceroute.
type Registration struct {
	MonitorID int
	Technique Technique
	Borders   []int
}

// Geolocator resolves interface addresses to opaque city identifiers
// (§4.2.2's ⟨AS, city⟩ tuples).
type Geolocator interface {
	LocateCity(ip uint32, when int64) (int, bool)
}

// Rel describes a's relationship toward b for §4.2.3's IXP inference.
type Rel int

// Relationship kinds.
const (
	RelNone Rel = iota
	// RelCustomerOf: a is a customer of b (b is a's provider).
	RelCustomerOf
	// RelProviderOf: a is a provider of b.
	RelProviderOf
	// RelPeerPublic: settlement-free peering over an IXP.
	RelPeerPublic
	// RelPeerPrivate: private peering.
	RelPeerPrivate
)

// RelOracle answers AS relationship queries (CAIDA AS-relationship
// substitute).
type RelOracle interface {
	Rel(a, b bgp.ASN) Rel
}

// Config tunes the engine.
type Config struct {
	// WindowSec is the BGP signal-generation window; 900 s in the paper
	// (one RouteViews dump cycle).
	WindowSec int64
	// PublicLadder is the candidate window ladder for traceroute-derived
	// series; anomaly.WindowLadder if nil.
	PublicLadder []int64
	// MinSuffixVPs is the minimum VP set size to instantiate a burst
	// series.
	MinSuffixVPs int
	// CommunityFPQuota is how many observed false-positive windows a
	// community survives before calibration prunes it (Appendix B).
	CommunityFPQuota int
	// CalibrationWindows is the sliding window length l for TPR/TNR
	// tallies; 30 in the paper.
	CalibrationWindows int
	// RevokeSignals enables §4.3.2 revocation.
	RevokeSignals bool
	// IXPBootstrapSec is the initial period during which traceroute-
	// observed IXP members silently augment the membership snapshot
	// instead of generating signals (§4.2.3's snapshot augmentation).
	IXPBootstrapSec int64
	// Disabled lists techniques to turn off entirely (monitors are not
	// even registered), for ablation studies: the paper's Table 2 "unique"
	// columns quantify what each technique contributes.
	Disabled []Technique
	// Shards is how many parallel shards NewSharded partitions the corpus
	// across: 0 means runtime.GOMAXPROCS(0), 1 is the exact serial path.
	// The sharded engine's signal stream is identical to the serial
	// engine's regardless of the value. NewEngine ignores it (a plain
	// Engine is one shard).
	Shards int
}

// disabled reports whether a technique is switched off.
func (c Config) disabled(t Technique) bool {
	for _, d := range c.Disabled {
		if d == t {
			return true
		}
	}
	return false
}

// DefaultConfig mirrors the paper's parameters.
func DefaultConfig() Config {
	return Config{
		WindowSec:          900,
		MinSuffixVPs:       2,
		CommunityFPQuota:   1,
		CalibrationWindows: 30,
		RevokeSignals:      true,
		IXPBootstrapSec:    86400,
	}
}

// withDefaults resolves zero-valued fields to the paper's parameters, so a
// partially-filled Config gets the same values DefaultConfig would give.
func (c Config) withDefaults() Config {
	if c.WindowSec == 0 {
		c.WindowSec = 900
	}
	if c.MinSuffixVPs == 0 {
		c.MinSuffixVPs = 2
	}
	if c.CalibrationWindows == 0 {
		c.CalibrationWindows = 30
	}
	if c.CommunityFPQuota == 0 {
		c.CommunityFPQuota = 1
	}
	return c
}

// Engine consumes BGP updates and public traceroutes and emits staleness
// prediction signals for a registered corpus.
type Engine struct {
	cfg     Config
	mapper  traceroute.Mapper
	aliases bordermap.AliasOracle
	geo     Geolocator
	rel     RelOracle

	rib *bgp.RIB

	// Corpus registrations.
	entries map[traceroute.Key]*corpus.Entry
	regs    map[traceroute.Key][]Registration

	// destToKeys indexes corpus pairs by destination address.
	destToKeys map[uint32][]traceroute.Key

	// sh is the window fold and the monitor series shared across corpus
	// pairs. A serial engine owns its instance; every shard of a Sharded
	// engine points at one dispatcher-owned instance, so shared state is
	// observed and evaluated once per feed event instead of once per shard.
	sh *sharedState

	// window is the current window start; -1 before first observation.
	window int64
	ids    *idAlloc

	asp      []*aspMonitor
	aspByVP  map[vpPrefix][]*aspMonitor
	aspByKey map[traceroute.Key][]*aspMonitor
	bursts   []*burstMonitor
	comms    map[traceroute.Key]*commMonitor
	commByVP map[vpPrefix][]*commMonitor

	subByKey   map[traceroute.Key][]*subpathMonitor
	brsByKey   map[traceroute.Key][]*borderRouterSeries
	pendingIXP []Signal

	patcher *traceroute.Patcher

	// Active signals per corpus pair, for revocation and querying.
	active map[traceroute.Key][]Signal

	// Calib is the §4.3 calibrator; exported for refresh planning.
	Calib *Calibrator

	// retired stashes detector state when a pair is re-registered after a
	// refresh so monitors with unchanged scope keep their warmed-up
	// detector history instead of cold-starting.
	retired map[traceroute.Key]map[string]*retiredState

	// stats
	signalCount    [numTechniques]int
	deadASP        int
	revokedSignals int
	revokedPairs   int
	windowsClosed  int
}

// idAlloc issues monitor identifiers. Identity is content-derived: every
// monitor is named by its scope (pair, technique, AS suffix, subpath,
// border-router series) and its ID is a stable 63-bit FNV-1a hash of that
// name. Content addressing makes IDs partition-invariant — a cluster
// worker registering only its consistent-hash slice of the corpus assigns
// each monitor exactly the ID a single daemon tracking the whole corpus
// would, so per-pair signals (and the verdict JSON rendered from them)
// are byte-identical under any partitioning. It also makes IDs stable
// across refresh re-registration: a monitor with unchanged scope keeps
// its calibration tallies along with its retained detector state. The
// shards of one Sharded engine share the allocator for its memoization
// map only; the hash itself needs no coordination.
type idAlloc struct {
	named map[string]int
}

func newIDAlloc() *idAlloc { return &idAlloc{named: make(map[string]int)} }

// hashID is 64-bit FNV-1a folded to a positive int. Collisions across
// distinct monitor names are possible in principle (~n²/2⁶³) but harmless
// in practice: a collision would merge two monitors' calibration tallies,
// not corrupt signal generation, and determinism — the property the
// cluster's byte-identity proof rests on — is unaffected.
func hashID(name string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	id := int(h & (1<<63 - 1))
	if id == 0 {
		id = 1 // keep 0 meaning "no monitor" everywhere
	}
	return id
}

func (a *idAlloc) idFor(name string) int {
	if id, ok := a.named[name]; ok {
		return id
	}
	id := hashID(name)
	a.named[name] = id
	return id
}

// retiredState preserves a monitor's detector and revocation baseline
// across re-registration.
type retiredState struct {
	det      interface{}
	baseline float64
	hasBase  bool
}

type vpPrefix struct {
	vp bgp.VPKey
	pf trie.Prefix
}

type vpWindowState struct {
	// startPath/startComms are the route attributes at window start.
	startPath  bgp.Path
	startComms bgp.Communities
	startOK    bool
	// updates during this window.
	paths []bgp.Path
	dup   bool
}

type commEvent struct {
	vp     bgp.VPKey
	prefix trie.Prefix
	prev   bgp.Communities
	cur    bgp.Communities
	time   int64
}

// NewEngine builds an engine. The RIB should be primed with an initial
// table dump (via ObserveBGP) before corpus traceroutes are registered, as
// the paper starts BGP collection two days before corpus initialization.
func NewEngine(cfg Config, m traceroute.Mapper, aliases bordermap.AliasOracle, geo Geolocator, rel RelOracle) *Engine {
	cfg = cfg.withDefaults()
	calib := NewCalibrator(cfg.CalibrationWindows, cfg.CommunityFPQuota)
	return newEngineWith(cfg, m, aliases, geo, rel, bgp.NewRIB(), newIDAlloc(), calib, traceroute.NewPatcher(), newSharedState(cfg, geo))
}

// newEngineWith builds one engine around externally-owned shared services:
// NewSharded passes the same RIB, ID allocator, calibrator, patcher, and
// shared series state to every shard. cfg must already have defaults
// resolved.
func newEngineWith(cfg Config, m traceroute.Mapper, aliases bordermap.AliasOracle, geo Geolocator, rel RelOracle,
	rib *bgp.RIB, ids *idAlloc, calib *Calibrator, patcher *traceroute.Patcher, sh *sharedState) *Engine {
	e := &Engine{
		cfg:        cfg,
		mapper:     m,
		aliases:    aliases,
		geo:        geo,
		rel:        rel,
		rib:        rib,
		entries:    make(map[traceroute.Key]*corpus.Entry),
		regs:       make(map[traceroute.Key][]Registration),
		destToKeys: make(map[uint32][]traceroute.Key),
		window:     -1,
		sh:         sh,
		ids:        ids,
		aspByVP:    make(map[vpPrefix][]*aspMonitor),
		aspByKey:   make(map[traceroute.Key][]*aspMonitor),
		comms:      make(map[traceroute.Key]*commMonitor),
		commByVP:   make(map[vpPrefix][]*commMonitor),
		subByKey:   make(map[traceroute.Key][]*subpathMonitor),
		brsByKey:   make(map[traceroute.Key][]*borderRouterSeries),
		patcher:    patcher,
		retired:    make(map[traceroute.Key]map[string]*retiredState),
		active:     make(map[traceroute.Key][]Signal),
	}
	e.Calib = calib
	return e
}

// RIB exposes the engine's BGP table view (read-only use).
func (e *Engine) RIB() *bgp.RIB { return e.rib }

// Entry returns the registered corpus entry for a pair.
func (e *Engine) Entry(k traceroute.Key) (*corpus.Entry, bool) {
	en, ok := e.entries[k]
	return en, ok
}

// Registrations returns the potential signals covering a corpus pair.
func (e *Engine) Registrations(k traceroute.Key) []Registration {
	return e.regs[k]
}

// Active returns the currently-active (unrevoked) signals for a pair.
func (e *Engine) Active(k traceroute.Key) []Signal { return e.active[k] }

// ActivePairs counts pairs with at least one active signal.
func (e *Engine) ActivePairs() int {
	n := 0
	for _, sigs := range e.active {
		if len(sigs) > 0 {
			n++
		}
	}
	return n
}

// NumEntries reports how many corpus pairs this engine owns.
func (e *Engine) NumEntries() int { return len(e.entries) }

// ClearActive resets a pair's signal state (after a refresh re-registers
// it).
func (e *Engine) ClearActive(k traceroute.Key) { delete(e.active, k) }

// RestoreActive re-injects previously-generated signals into the active
// set, used when a Monitor is rebuilt from a snapshot: the signals keep
// flagging their pairs as stale across a restart without replaying the
// feed history that produced them. Restored signals carry MonitorIDs from
// the previous process generation, which is fine for staleness queries and
// refresh planning; §4.3.2 revocation still applies to them through the
// pair-level reverted check.
func (e *Engine) RestoreActive(sigs []Signal) {
	for _, s := range sigs {
		e.active[s.Key] = append(e.active[s.Key], s)
	}
}

// SignalCounts returns per-technique signal totals.
func (e *Engine) SignalCounts() map[Technique]int {
	out := make(map[Technique]int, int(numTechniques))
	for t := Technique(0); t < numTechniques; t++ {
		out[t] = e.signalCount[t]
	}
	return out
}

// SetInitialIXPMembership seeds §4.2.3's membership snapshot (PeeringDB
// substitute, possibly incomplete).
func (e *Engine) SetInitialIXPMembership(members map[int][]bgp.ASN) {
	for ixp, list := range members {
		m := make(map[bgp.ASN]bool, len(list))
		for _, as := range list {
			m[as] = true
		}
		e.sh.ixpMembers[ixp] = m
	}
}

// AllowPrivatePeerSignals marks an AS as giving public and private peers
// equal local preference, enabling IXP signals through private peers
// (§4.2.3's learned exception).
func (e *Engine) AllowPrivatePeerSignals(as bgp.ASN) { e.sh.allowPriv[as] = true }

// monitorID names a per-pair monitor and returns its content-derived ID.
// The scope string must uniquely identify the monitor within the pair
// (e.g. the monitored AS suffix); see idAlloc for why IDs are hashes.
func (e *Engine) monitorID(kind string, k traceroute.Key, scope string) int {
	return e.ids.idFor(kind + ":" + k.String() + ":" + scope)
}

// WindowsClosed reports how many CloseWindow calls the engine has run.
func (e *Engine) WindowsClosed() int { return e.windowsClosed }

func (e *Engine) addReg(k traceroute.Key, r Registration) {
	e.regs[k] = append(e.regs[k], r)
}

// signalLess is a total order over distinguishable signals, so sorting a
// merged multi-shard signal stream reproduces the serial engine's output
// byte for byte (sort.Slice is unstable; a partial order would let equal-
// keyed signals land in input order, which differs across shard merges).
func signalLess(a, b Signal) bool {
	if a.WindowStart != b.WindowStart {
		return a.WindowStart < b.WindowStart
	}
	if a.Technique != b.Technique {
		return a.Technique < b.Technique
	}
	if a.Key.Src != b.Key.Src {
		return a.Key.Src < b.Key.Src
	}
	if a.Key.Dst != b.Key.Dst {
		return a.Key.Dst < b.Key.Dst
	}
	if a.MonitorID != b.MonitorID {
		return a.MonitorID < b.MonitorID
	}
	if a.Detail != b.Detail {
		return a.Detail < b.Detail
	}
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	if len(a.Borders) != len(b.Borders) {
		return len(a.Borders) < len(b.Borders)
	}
	for i := range a.Borders {
		if a.Borders[i] != b.Borders[i] {
			return a.Borders[i] < b.Borders[i]
		}
	}
	return false
}

// sortSignals orders signals deterministically.
func sortSignals(sigs []Signal) {
	sort.Slice(sigs, func(i, j int) bool { return signalLess(sigs[i], sigs[j]) })
}

// SignalLess reports whether a orders before b in the engine's canonical
// emission order. Exported for stream mergers — the cluster router — that
// must reproduce serial-engine output from partitioned sources.
func SignalLess(a, b Signal) bool { return signalLess(a, b) }
