package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
)

// faultedEngine perturbs observation delivery the way a faulty transport
// would — duplicate deliveries and bounded reordering within a window —
// before handing records to the wrapped engine. The perturbation is a pure
// function of the seed, so wrapping the serial engine and each sharded
// engine with the same seed feeds every one the identical faulted sequence.
// Pens flush before a window closes, so faults never move an observation
// across a window boundary.
type faultedEngine struct {
	engineAPI
	rng  *rand.Rand
	penU []bgp.Update
	penT []*traceroute.Traceroute
}

func newFaultedEngine(inner engineAPI, seed int64) *faultedEngine {
	return &faultedEngine{engineAPI: inner, rng: rand.New(rand.NewSource(seed))}
}

func (f *faultedEngine) ObserveBGP(u bgp.Update) {
	f.penU = append(f.penU, u)
	if f.rng.Float64() < 0.25 {
		f.penU = append(f.penU, u) // at-least-once redelivery
	}
	for len(f.penU) > 4 {
		f.deliverU()
	}
}

func (f *faultedEngine) deliverU() {
	i := f.rng.Intn(len(f.penU))
	u := f.penU[i]
	f.penU = append(f.penU[:i], f.penU[i+1:]...)
	f.engineAPI.ObserveBGP(u)
}

func (f *faultedEngine) ObservePublicTrace(tr *traceroute.Traceroute) {
	f.penT = append(f.penT, tr)
	if f.rng.Float64() < 0.25 {
		f.penT = append(f.penT, tr)
	}
	for len(f.penT) > 4 {
		f.deliverT()
	}
}

func (f *faultedEngine) deliverT() {
	i := f.rng.Intn(len(f.penT))
	tr := f.penT[i]
	f.penT = append(f.penT[:i], f.penT[i+1:]...)
	f.engineAPI.ObservePublicTrace(tr)
}

func (f *faultedEngine) CloseWindow(ws int64) []Signal {
	for len(f.penU) > 0 {
		f.deliverU()
	}
	for len(f.penT) > 0 {
		f.deliverT()
	}
	return f.engineAPI.CloseWindow(ws)
}

// TestShardedMatchesSerialUnderFaults extends the serial/sharded
// equivalence guarantee to faulted inputs: when the identical seeded
// dup+reorder-within-window schedule perturbs the workload, the sharded
// engine's signal stream must still be byte-identical to the serial
// engine's at every shard count. A divergence here means some engine path
// (burst counting across shard drains, replica warm-up, monitor state)
// depends on more than the observation sequence itself.
func TestShardedMatchesSerialUnderFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0
	const seed = 1337

	serial := runShardWorkload(t, newFaultedEngine(
		NewEngine(cfg, testMapper{}, identityAliases, workloadGeo(), workloadRel()), seed))

	// The equivalence check is only meaningful if the faulted workload
	// still makes every technique fire (duplicates only add observations,
	// and reordering stays within windows, so it should).
	for tech, n := range serial.counts {
		if n == 0 {
			t.Errorf("faulted workload produced no %v signals; equivalence check is weak", tech)
		}
	}

	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			scfg := cfg
			scfg.Shards = shards
			got := runShardWorkload(t, newFaultedEngine(
				NewSharded(scfg, testMapper{}, identityAliases, workloadGeo(), workloadRel()), seed))
			if len(got.windows) != len(serial.windows) {
				t.Fatalf("window count = %d, want %d", len(got.windows), len(serial.windows))
			}
			for i := range serial.windows {
				if !reflect.DeepEqual(got.windows[i], serial.windows[i]) {
					t.Fatalf("window %d diverges under faults:\n sharded: %v\n serial:  %v",
						i, got.windows[i], serial.windows[i])
				}
			}
			if !reflect.DeepEqual(got.counts, serial.counts) {
				t.Errorf("signal counts = %v, want %v", got.counts, serial.counts)
			}
			if got.revoked != serial.revoked {
				t.Errorf("revocation stats = %v, want %v", got.revoked, serial.revoked)
			}
			if !reflect.DeepEqual(got.plan, serial.plan) {
				t.Errorf("refresh plan = %v, want %v", got.plan, serial.plan)
			}
		})
	}
}
