package core

import (
	"math/rand"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// The test universe: AS i owns i.0.0.0/8; 240.x is IXP 1 with members
// resolved via ixpMembers below.
type testMapper struct{}

var ixpIfaceMember = map[uint32]bgp.ASN{}

func (testMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	f := ip >> 24
	if f == 240 || f == 0 || f == 99 {
		return 0, false
	}
	return bgp.ASN(f), true
}

func (testMapper) IXPOf(ip uint32) (int, bool) {
	if ip>>24 == 240 {
		return 1, true
	}
	return 0, false
}

func (testMapper) IXPMemberOf(ip uint32) (bgp.ASN, bool) {
	as, ok := ixpIfaceMember[ip]
	return as, ok
}

// identityAliases: every interface is its own router.
var identityAliases = bordermap.OracleFunc(func(ip uint32) (int, bool) {
	return int(ip), true
})

// mapGeo locates IPs via an explicit map.
type mapGeo map[uint32]int

func (g mapGeo) LocateCity(ip uint32, _ int64) (int, bool) {
	c, ok := g[ip]
	return c, ok
}

// mapRel answers relationship queries from an explicit table.
type mapRel map[[2]bgp.ASN]Rel

func (r mapRel) Rel(a, b bgp.ASN) Rel { return r[[2]bgp.ASN{a, b}] }

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := trie.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mkTrace(t *testing.T, when int64, src, dst string, hops ...string) *traceroute.Traceroute {
	t.Helper()
	tr := &traceroute.Traceroute{Src: mustIP(t, src), Dst: mustIP(t, dst), Time: when, ProbeID: 1}
	for i, h := range hops {
		hop := traceroute.Hop{TTL: i + 1}
		if h != "*" {
			hop.IP = mustIP(t, h)
		}
		tr.Hops = append(tr.Hops, hop)
	}
	if n := len(tr.Hops); n > 0 && tr.Hops[n-1].IP == tr.Dst {
		tr.Reached = true
	}
	return tr
}

func pfx(t *testing.T, s string) trie.Prefix {
	t.Helper()
	p, err := trie.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func announce(t *testing.T, tm int64, vpIP string, vpAS bgp.ASN, prefix string, path bgp.Path, comms bgp.Communities) bgp.Update {
	t.Helper()
	return bgp.Update{
		Time: tm, PeerIP: mustIP(t, vpIP), PeerAS: vpAS, Type: bgp.Announce,
		Prefix: pfx(t, prefix), ASPath: path, Communities: comms,
	}
}

type testEnv struct {
	e    *Engine
	corp *corpus.Corpus
	geo  mapGeo
	rel  mapRel
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	geo := mapGeo{}
	rel := mapRel{}
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0 // unit tests exercise signals from t=0
	e := NewEngine(cfg, testMapper{}, identityAliases, geo, rel)
	return &testEnv{
		e:    e,
		corp: corpus.New(testMapper{}, identityAliases),
		geo:  geo,
		rel:  rel,
	}
}

// primeVPs announces the two standard VP routes to 4.0.0.0/8:
//
//	vpA 5.0.0.9 (AS5): 5 2 3 4
//	vpB 6.0.0.9 (AS6): 6 3 4
func (te *testEnv) primeVPs(t *testing.T) {
	t.Helper()
	te.e.ObserveBGP(announce(t, 0, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 3, 4}, nil))
	te.e.ObserveBGP(announce(t, 0, "6.0.0.9", 6, "4.0.0.0/8", bgp.Path{6, 3, 4}, nil))
}

// standardEntry registers the corpus traceroute 1.0.0.1 → 4.0.0.9 with AS
// path 1 2 3 4 and an AS4 backbone hop shared with public traces.
func (te *testEnv) standardEntry(t *testing.T) *corpus.Entry {
	t.Helper()
	tr := mkTrace(t, 0, "1.0.0.1", "4.0.0.9",
		"1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.9")
	en, err := te.corp.Process(tr)
	if err != nil {
		t.Fatal(err)
	}
	te.e.AddCorpusEntry(en)
	return en
}

// warm runs n quiet windows.
func (te *testEnv) warm(t *testing.T, from int64, n int) int64 {
	t.Helper()
	w := te.e.cfg.WindowSec
	for i := int64(0); i < int64(n); i++ {
		if sigs := te.e.CloseWindow(from + i*w); len(sigs) != 0 {
			t.Fatalf("quiet window %d produced signals: %v", i, sigs)
		}
	}
	return from + int64(n)*w
}

func TestRegistrationCreatesMonitors(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)
	regs := te.e.Registrations(en.Key)
	counts := make(map[Technique]int)
	for _, r := range regs {
		counts[r.Technique]++
	}
	if counts[TechBGPASPath] == 0 {
		t.Error("no AS-path monitors")
	}
	if counts[TechBGPBurst] == 0 {
		t.Error("no burst monitors")
	}
	if counts[TechBGPCommunity] == 0 {
		t.Error("no community monitor")
	}
	if counts[TechTraceSubpath] == 0 {
		t.Error("no subpath monitors")
	}
	if len(en.Borders) != 3 {
		t.Fatalf("expected 3 borders, got %d", len(en.Borders))
	}
}

func TestASPathSignalOnSuffixChange(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)
	end := te.warm(t, 0, 45)

	// vpA's path shifts inside the suffix: 5 2 9 4 still first-intersects
	// τ at AS2 but no longer matches the suffix 2 3 4.
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 9, 4}, nil))
	sigs := te.e.CloseWindow(end)
	var got []Signal
	for _, s := range sigs {
		if s.Technique == TechBGPASPath && s.Key == en.Key {
			got = append(got, s)
		}
	}
	if len(got) == 0 {
		t.Fatalf("no AS-path signal; window sigs = %v", sigs)
	}
	if len(got[0].Borders) == 0 {
		t.Error("signal covers no borders")
	}
	if len(te.e.Active(en.Key)) == 0 {
		t.Error("signal not tracked as active")
	}
}

func TestASPathMissingWindowsNotOutliers(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	te.standardEntry(t)
	end := te.warm(t, 0, 30)
	// Withdraw both VP routes: P_intersect becomes empty → missing, never
	// an outlier.
	te.e.ObserveBGP(bgp.Update{Time: end + 1, PeerIP: mustIP(t, "5.0.0.9"), PeerAS: 5,
		Type: bgp.Withdraw, Prefix: pfx(t, "4.0.0.0/8")})
	te.e.ObserveBGP(bgp.Update{Time: end + 1, PeerIP: mustIP(t, "6.0.0.9"), PeerAS: 6,
		Type: bgp.Withdraw, Prefix: pfx(t, "4.0.0.0/8")})
	for i := 0; i < 5; i++ {
		sigs := te.e.CloseWindow(end + int64(i)*900)
		for _, s := range sigs {
			if s.Technique == TechBGPASPath {
				t.Fatalf("missing-value window flagged: %v", s)
			}
		}
	}
}

func TestCommunitySignalAndCaveats(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)
	end := te.warm(t, 0, 2)

	// vpB adds a community defined by AS3 (on τ): signal.
	te.e.ObserveBGP(announce(t, end+5, "6.0.0.9", 6, "4.0.0.0/8",
		bgp.Path{6, 3, 4}, bgp.Communities{bgp.MakeCommunity(3, 51000)}))
	sigs := te.e.CloseWindow(end)
	found := false
	for _, s := range sigs {
		if s.Technique == TechBGPCommunity && s.Key == en.Key {
			found = true
			if s.Comm != bgp.MakeCommunity(3, 51000) {
				t.Errorf("signal community = %v", s.Comm)
			}
		}
	}
	if !found {
		t.Fatalf("no community signal in %v", sigs)
	}

	// Caveat 2: vpA adding the community that vpB already carries on an
	// overlapping path is not a new signal.
	end += 900
	te.e.ObserveBGP(announce(t, end+5, "5.0.0.9", 5, "4.0.0.0/8",
		bgp.Path{5, 2, 3, 4}, bgp.Communities{bgp.MakeCommunity(3, 51000)}))
	sigs = te.e.CloseWindow(end)
	for _, s := range sigs {
		if s.Technique == TechBGPCommunity {
			t.Fatalf("caveat-2 community change signaled: %v", s)
		}
	}

	// Irrelevant community (AS 77 not on τ): no signal.
	end += 900
	te.e.ObserveBGP(announce(t, end+5, "6.0.0.9", 6, "4.0.0.0/8",
		bgp.Path{6, 3, 4}, bgp.Communities{
			bgp.MakeCommunity(3, 51000), bgp.MakeCommunity(77, 1),
		}))
	sigs = te.e.CloseWindow(end)
	for _, s := range sigs {
		if s.Technique == TechBGPCommunity {
			t.Fatalf("irrelevant community signaled: %v", s)
		}
	}
}

func TestCommunityPrunedByCalibration(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	te.standardEntry(t)
	comm := bgp.MakeCommunity(3, 7000)
	for i := 0; i < 3; i++ {
		te.e.Calib.RecordCommunityOutcome(comm, false)
	}
	if !te.e.Calib.CommunityPruned(comm) {
		t.Fatal("community not pruned after FP quota")
	}
	end := te.warm(t, 0, 2)
	te.e.ObserveBGP(announce(t, end+5, "6.0.0.9", 6, "4.0.0.0/8",
		bgp.Path{6, 3, 4}, bgp.Communities{comm}))
	sigs := te.e.CloseWindow(end)
	for _, s := range sigs {
		if s.Technique == TechBGPCommunity {
			t.Fatalf("pruned community still signals: %v", s)
		}
	}
	if te.e.Calib.PrunedCommunityCount() != 1 {
		t.Errorf("pruned count = %d", te.e.Calib.PrunedCommunityCount())
	}
}

func TestBurstSignalAndExculpation(t *testing.T) {
	te := newEnv(t)
	// Paths share extra AS 8 (not on τ); vpC traverses 8 without the
	// suffix, acting as the exculpation witness.
	te.e.ObserveBGP(announce(t, 0, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 8, 3, 4}, nil))
	te.e.ObserveBGP(announce(t, 0, "6.0.0.9", 6, "4.0.0.0/8", bgp.Path{6, 8, 3, 4}, nil))
	te.e.ObserveBGP(announce(t, 0, "7.0.0.9", 7, "4.0.0.0/8", bgp.Path{7, 8, 9, 4}, nil))
	en := te.standardEntry(t)
	end := te.warm(t, 0, 45)

	dup := func(tm int64, vpIP string, vpAS bgp.ASN, path bgp.Path) {
		te.e.ObserveBGP(announce(t, tm, vpIP, vpAS, "4.0.0.0/8", path, nil))
	}

	// Burst with the witness also bursting: change is on AS8, not the
	// suffix → exculpated, no signal.
	dup(end+1, "5.0.0.9", 5, bgp.Path{5, 8, 3, 4})
	dup(end+2, "6.0.0.9", 6, bgp.Path{6, 8, 3, 4})
	dup(end+3, "7.0.0.9", 7, bgp.Path{7, 8, 9, 4})
	sigs := te.e.CloseWindow(end)
	for _, s := range sigs {
		if s.Technique == TechBGPBurst {
			t.Fatalf("exculpated burst signaled: %v", s)
		}
	}
	end += 900

	// Quiet refractory windows so the next burst is a fresh outlier.
	end = te.warm(t, end, 10)

	// Burst without the witness: unexplained → signal.
	dup(end+1, "5.0.0.9", 5, bgp.Path{5, 8, 3, 4})
	dup(end+2, "6.0.0.9", 6, bgp.Path{6, 8, 3, 4})
	sigs = te.e.CloseWindow(end)
	found := false
	for _, s := range sigs {
		if s.Technique == TechBGPBurst && s.Key == en.Key {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexplained burst did not signal: %v", sigs)
	}
}

func TestSubpathSignal(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)

	// Public traces from a different source to a different AS4 host share
	// the monitored subpath [2.0.0.1 3.0.0.1 4.0.0.2]: the AS4 backbone
	// hop anchors the series beyond the border that will shift.
	w := te.e.cfg.WindowSec
	var now int64
	for i := 0; i < 60; i++ {
		now = int64(i) * w
		pub := mkTrace(t, now+5, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.8")
		te.e.ObservePublicTrace(pub)
		if sigs := te.e.CloseWindow(now); len(sigs) != 0 {
			t.Fatalf("steady public traces produced signals at %d: %v", i, sigs)
		}
	}
	// Route shift: public traces now cross a different AS3 ingress but
	// still reach the AS4 backbone hop.
	var got []Signal
	for i := 60; i < 64; i++ {
		now = int64(i) * w
		pub := mkTrace(t, now+5, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.1", "3.0.0.7", "4.0.0.2", "4.0.0.8")
		te.e.ObservePublicTrace(pub)
		for _, s := range te.e.CloseWindow(now) {
			if s.Technique == TechTraceSubpath && s.Key == en.Key {
				got = append(got, s)
			}
		}
	}
	if len(got) == 0 {
		t.Fatal("subpath shift not signaled")
	}
	if len(got[0].Borders) != 1 {
		t.Errorf("subpath signal borders = %v", got[0].Borders)
	}
}

func TestBorderRouterSignal(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	// Cities: AS2 side city 1, AS3 side city 2.
	te.geo[mustIP(t, "2.0.0.1")] = 1
	te.geo[mustIP(t, "2.0.0.5")] = 1
	te.geo[mustIP(t, "3.0.0.1")] = 2
	te.geo[mustIP(t, "3.0.0.7")] = 2
	te.geo[mustIP(t, "1.0.0.2")] = 9
	te.geo[mustIP(t, "4.0.0.2")] = 9
	te.geo[mustIP(t, "4.0.0.9")] = 9
	en := te.standardEntry(t)

	w := te.e.cfg.WindowSec
	// Public traces between the same ⟨AS,city⟩ pair via the same border
	// router (3.0.0.1), through a different IP-level path (2.0.0.5 side).
	for i := 0; i < 60; i++ {
		now := int64(i) * w
		te.e.ObservePublicTrace(mkTrace(t, now+5, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.5", "3.0.0.1", "4.0.0.8"))
		te.e.CloseWindow(now)
	}
	// The ASes shift to border router 3.0.0.7 between the same cities.
	var got []Signal
	for i := 60; i < 64; i++ {
		now := int64(i) * w
		te.e.ObservePublicTrace(mkTrace(t, now+5, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.5", "3.0.0.7", "4.0.0.8"))
		for _, s := range te.e.CloseWindow(now) {
			if s.Technique == TechTraceBorder && s.Key == en.Key {
				got = append(got, s)
			}
		}
	}
	if len(got) == 0 {
		t.Fatal("border router shift not signaled")
	}
}

func TestIXPMembershipSignal(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	// AS3 is a known member of IXP 1. AS2 is AS1's provider. τ = 1 2 3 4
	// contains AS1 (joiner) and member AS3, non-adjacent.
	te.e.SetInitialIXPMembership(map[int][]bgp.ASN{1: {3}})
	te.rel[[2]bgp.ASN{1, 2}] = RelCustomerOf
	en := te.standardEntry(t)

	// A public trace shows AS1 as near-end neighbor of an IXP interface.
	ixpIfaceMember[mustIP(t, "240.0.0.77")] = 9
	pub := mkTrace(t, 100, "1.0.0.5", "9.0.0.8",
		"1.0.0.6", "240.0.0.77", "9.0.0.8")
	te.e.ObservePublicTrace(pub)
	sigs := te.e.CloseWindow(0)
	found := false
	for _, s := range sigs {
		if s.Technique == TechIXPMembership && s.Key == en.Key {
			found = true
		}
	}
	if !found {
		t.Fatalf("IXP membership signal missing: %v", sigs)
	}
	// Re-observing the same member does not re-signal.
	te.e.ObservePublicTrace(pub)
	sigs = te.e.CloseWindow(900)
	for _, s := range sigs {
		if s.Technique == TechIXPMembership {
			t.Fatalf("duplicate membership signaled: %v", s)
		}
	}
}

func TestIXPPrivatePeerSuppressed(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	te.e.SetInitialIXPMembership(map[int][]bgp.ASN{1: {3}})
	te.rel[[2]bgp.ASN{1, 2}] = RelPeerPrivate
	te.standardEntry(t)
	ixpIfaceMember[mustIP(t, "240.0.0.78")] = 9
	te.e.ObservePublicTrace(mkTrace(t, 100, "1.0.0.5", "9.0.0.8",
		"1.0.0.6", "240.0.0.78", "9.0.0.8"))
	sigs := te.e.CloseWindow(0)
	for _, s := range sigs {
		if s.Technique == TechIXPMembership {
			t.Fatalf("private-peer case signaled without permission: %v", s)
		}
	}
	// With the learned exception, it signals.
	te2 := newEnv(t)
	te2.primeVPs(t)
	te2.e.SetInitialIXPMembership(map[int][]bgp.ASN{1: {3}})
	te2.rel[[2]bgp.ASN{1, 2}] = RelPeerPrivate
	te2.e.AllowPrivatePeerSignals(1)
	te2.standardEntry(t)
	te2.e.ObservePublicTrace(mkTrace(t, 100, "1.0.0.5", "9.0.0.8",
		"1.0.0.6", "240.0.0.78", "9.0.0.8"))
	sigs = te2.e.CloseWindow(0)
	found := false
	for _, s := range sigs {
		if s.Technique == TechIXPMembership {
			found = true
		}
	}
	if !found {
		t.Fatal("allowed private-peer case did not signal")
	}
}

func TestRevocationOnRevert(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)
	end := te.warm(t, 0, 45)
	// Shift then revert vpA's path.
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 9, 4}, nil))
	te.e.CloseWindow(end)
	if len(te.e.Active(en.Key)) == 0 {
		t.Fatal("expected active signal after shift")
	}
	end += 900
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 3, 4}, nil))
	te.e.CloseWindow(end)
	// The revert window itself registers instability (ratio 0.5); the
	// following quiet window settles the ratio back to its baseline and
	// the revocation fires.
	end += 900
	te.e.CloseWindow(end)
	if n := len(te.e.Active(en.Key)); n != 0 {
		t.Fatalf("signals not revoked after revert: %d active", n)
	}
}

func TestEvaluateRefreshOutcomes(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)
	end := te.warm(t, 0, 45)
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 9, 4}, nil))
	te.e.CloseWindow(end)
	if len(te.e.Active(en.Key)) == 0 {
		t.Fatal("no active signals to evaluate")
	}
	// Refresh shows a changed border inside the flagged span.
	newTr := mkTrace(t, end+900, "1.0.0.1", "4.0.0.9",
		"1.0.0.2", "2.0.0.1", "3.0.0.7", "4.0.0.9")
	newEn, err := te.corp.Process(newTr)
	if err != nil {
		t.Fatal(err)
	}
	cls, ok := te.e.EvaluateRefresh(newEn)
	if !ok {
		t.Fatal("EvaluateRefresh found no entry")
	}
	if cls != bordermap.BorderChange {
		t.Fatalf("classification = %v; want border change", cls)
	}
	// Outcomes recorded: at least one TP for the source.
	foundTP := false
	for _, reg := range te.e.Registrations(en.Key) {
		tally := te.e.Calib.stats[calibKey{src: en.Key.Src, monitor: reg.MonitorID}]
		if tally != nil {
			for _, o := range tally.ring {
				if o == OutcomeTP {
					foundTP = true
				}
			}
		}
	}
	if !foundTP {
		t.Fatal("no TP outcome recorded")
	}
	// Reregister swaps the entry.
	te.e.Reregister(newEn)
	got, _ := te.e.Entry(en.Key)
	if got != newEn {
		t.Fatal("Reregister did not swap the entry")
	}
	if len(te.e.Active(en.Key)) != 0 {
		t.Fatal("active signals survive reregistration")
	}
}

func TestRefreshPlanRespectsBudget(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	// Two corpus pairs from different sources.
	en1 := te.standardEntry(t)
	tr2 := mkTrace(t, 0, "1.0.0.77", "4.0.0.9",
		"1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	en2, err := te.corp.Process(tr2)
	if err != nil {
		t.Fatal(err)
	}
	te.e.AddCorpusEntry(en2)
	end := te.warm(t, 0, 45)
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 9, 4}, nil))
	te.e.CloseWindow(end)
	if len(te.e.Active(en1.Key)) == 0 || len(te.e.Active(en2.Key)) == 0 {
		t.Fatal("both pairs should be flagged")
	}
	rng := rand.New(rand.NewSource(1))
	plan := te.e.RefreshPlan(1, rng)
	if len(plan) != 1 {
		t.Fatalf("plan size = %d; want 1 (budget)", len(plan))
	}
	plan = te.e.RefreshPlan(10, rng)
	if len(plan) != 2 {
		t.Fatalf("plan size = %d; want 2 (all flagged)", len(plan))
	}
}

func TestCalibratorRates(t *testing.T) {
	c := NewCalibrator(4, 3)
	if _, _, ok := c.Rates(1, 1); ok {
		t.Fatal("rates should be uninitialized")
	}
	c.Record(1, 1, OutcomeTP)
	c.Record(1, 1, OutcomeFN)
	c.Record(1, 1, OutcomeTN)
	if _, _, ok := c.Rates(1, 1); ok {
		t.Fatal("rates initialized before window full")
	}
	c.Record(1, 1, OutcomeFP)
	tpr, tnr, ok := c.Rates(1, 1)
	if !ok || tpr != 0.5 || tnr != 0.5 {
		t.Fatalf("rates = %f, %f, %v; want 0.5, 0.5", tpr, tnr, ok)
	}
	// Sliding: four more TPs push out the old outcomes.
	for i := 0; i < 4; i++ {
		c.Record(1, 1, OutcomeTP)
	}
	tpr, tnr, _ = c.Rates(1, 1)
	if tpr != 1 || tnr != 0 {
		t.Fatalf("slid rates = %f, %f", tpr, tnr)
	}
}

func TestTable1Ordering(t *testing.T) {
	a := Signal{IPOverlap: 3, Technique: TechTraceSubpath, Score: 4}
	b := Signal{IPOverlap: 2, ASOverlap: 9, Technique: TechBGPASPath, VPCount: 50}
	if !table1Less(a, b) {
		t.Error("longer IP overlap must win (priority 1)")
	}
	c := Signal{ASOverlap: 4, Technique: TechBGPASPath}
	d := Signal{ASOverlap: 3, Technique: TechBGPASPath}
	if !table1Less(c, d) {
		t.Error("longer AS overlap must win (priority 2)")
	}
	e := Signal{SameASVP: true, SameCityVP: true}
	f := Signal{SameASVP: true}
	if !table1Less(e, f) {
		t.Error("same AS+city beats same AS (priority 3 vs 4)")
	}
	g := Signal{Technique: TechBGPASPath}
	h := Signal{Technique: TechTraceBorder}
	if !table1Less(g, h) {
		t.Error("AS-level change beats border change (priority 6 vs 7)")
	}
	i := Signal{Technique: TechBGPBurst, VPCount: 5}
	j := Signal{Technique: TechBGPBurst, VPCount: 2}
	if !table1Less(i, j) {
		t.Error("BGP ties break on VP count")
	}
}

func TestDisabledTechniques(t *testing.T) {
	geo := mapGeo{}
	rel := mapRel{}
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0
	cfg.Disabled = []Technique{TechBGPASPath, TechBGPBurst, TechBGPCommunity,
		TechTraceSubpath, TechTraceBorder, TechIXPMembership}
	e := NewEngine(cfg, testMapper{}, identityAliases, geo, rel)
	te := &testEnv{e: e, corp: corpus.New(testMapper{}, identityAliases), geo: geo, rel: rel}
	te.primeVPs(t)
	en := te.standardEntry(t)
	if n := len(te.e.Registrations(en.Key)); n != 0 {
		t.Fatalf("disabled engine registered %d monitors", n)
	}
	end := te.warm(t, 0, 45)
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 9, 4}, nil))
	if sigs := te.e.CloseWindow(end); len(sigs) != 0 {
		t.Fatalf("disabled engine emitted %v", sigs)
	}
}

func TestDisableSingleTechnique(t *testing.T) {
	geo := mapGeo{}
	rel := mapRel{}
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0
	cfg.Disabled = []Technique{TechBGPASPath}
	e := NewEngine(cfg, testMapper{}, identityAliases, geo, rel)
	te := &testEnv{e: e, corp: corpus.New(testMapper{}, identityAliases), geo: geo, rel: rel}
	te.primeVPs(t)
	en := te.standardEntry(t)
	for _, r := range te.e.Registrations(en.Key) {
		if r.Technique == TechBGPASPath {
			t.Fatal("disabled technique still registered")
		}
	}
	// Other techniques still present.
	if len(te.e.Registrations(en.Key)) == 0 {
		t.Fatal("all techniques vanished")
	}
}

func TestBurstQuorumScalesWithVPs(t *testing.T) {
	// With seven VPs sharing the suffix the quorum is three: a
	// two-duplicate coincidence must not fire; a burst from four must.
	te := newEnv(t)
	vps := []string{"5.0.0.9", "6.0.0.9", "7.0.0.9", "8.0.0.9", "9.0.0.9", "11.0.0.9", "12.0.0.9"}
	for i, v := range vps {
		te.e.ObserveBGP(announce(t, 0, v, bgp.ASN(5+i), "4.0.0.0/8",
			bgp.Path{bgp.ASN(5 + i), 3, 4}, nil))
	}
	en := te.standardEntry(t)
	end := te.warm(t, 0, 45)

	dup := func(tm int64, v string, as bgp.ASN) {
		te.e.ObserveBGP(announce(t, tm, v, as, "4.0.0.0/8",
			bgp.Path{as, 3, 4}, nil))
	}
	// Two duplicates out of six: below quorum.
	dup(end+1, vps[0], 5)
	dup(end+2, vps[1], 6)
	for _, s := range te.e.CloseWindow(end) {
		if s.Technique == TechBGPBurst {
			t.Fatalf("sub-quorum burst signaled: %v", s)
		}
	}
	end += 900
	end = te.warm(t, end, 10)
	// Four duplicates: quorum met.
	for i := 0; i < 4; i++ {
		dup(end+int64(i)+1, vps[i], bgp.ASN(5+i))
	}
	found := false
	for _, s := range te.e.CloseWindow(end) {
		if s.Technique == TechBGPBurst && s.Key == en.Key {
			found = true
		}
	}
	if !found {
		t.Fatal("quorum burst did not signal")
	}
}

func TestRefreshPlanPrefersCalibratedVP(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	en1 := te.standardEntry(t)
	tr2 := mkTrace(t, 0, "1.0.0.77", "4.0.0.9",
		"1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.9")
	en2, err := te.corp.Process(tr2)
	if err != nil {
		t.Fatal(err)
	}
	te.e.AddCorpusEntry(en2)

	// Calibrate: every monitor of src 1.0.0.1 has perfect TPR; src
	// 1.0.0.77 has zero TPR (all signals were false).
	for _, reg := range te.e.Registrations(en1.Key) {
		for i := 0; i < 30; i++ {
			te.e.Calib.Record(en1.Key.Src, reg.MonitorID, OutcomeTP)
		}
	}
	for _, reg := range te.e.Registrations(en2.Key) {
		for i := 0; i < 30; i++ {
			te.e.Calib.Record(en2.Key.Src, reg.MonitorID, OutcomeFP)
		}
	}
	end := te.warm(t, 0, 45)
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 9, 4}, nil))
	te.e.CloseWindow(end)
	if len(te.e.Active(en1.Key)) == 0 || len(te.e.Active(en2.Key)) == 0 {
		t.Fatal("both pairs should be flagged")
	}
	// With budget 1, the calibrated high-TPR source must win.
	rng := rand.New(rand.NewSource(2))
	plan := te.e.RefreshPlan(1, rng)
	if len(plan) != 1 || plan[0] != en1.Key {
		t.Fatalf("plan = %v; want [%v]", plan, en1.Key)
	}
}

func TestSubpathWindowLadderSparseData(t *testing.T) {
	// Observations arriving every ~2 hours cannot support 15-minute
	// windows; the monitor must choose a larger rung and still detect a
	// shift.
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)
	w := int64(7200) // one public observation every 2 hours
	var now int64
	// 2*MinObservations buffered + 20 consecutive populated windows.
	for i := 0; i < 100; i++ {
		now = int64(i)*w + 600
		te.e.ObservePublicTrace(mkTrace(t, now, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.8"))
		for ws := int64(i) * w; ws < int64(i+1)*w; ws += 900 {
			for _, s := range te.e.CloseWindow(ws) {
				if s.Technique == TechTraceSubpath {
					t.Fatalf("steady sparse series signaled at obs %d", i)
				}
			}
		}
	}
	st := te.e.MonitorStats()
	if st.SubpathActive == 0 {
		t.Fatal("no subpath series activated on 2-hour data")
	}
	// Shift: the AS3 ingress changes.
	var got []Signal
	for i := 100; i < 106; i++ {
		now = int64(i)*w + 600
		te.e.ObservePublicTrace(mkTrace(t, now, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.1", "3.0.0.7", "4.0.0.2", "4.0.0.8"))
		for ws := int64(i) * w; ws < int64(i+1)*w; ws += 900 {
			for _, s := range te.e.CloseWindow(ws) {
				if s.Technique == TechTraceSubpath && s.Key == en.Key {
					got = append(got, s)
				}
			}
		}
	}
	if len(got) == 0 {
		t.Fatal("sparse-series shift not signaled")
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() []Signal {
		te := newEnv(t)
		te.primeVPs(t)
		te.standardEntry(t)
		var all []Signal
		for w := int64(0); w < 50; w++ {
			if w == 45 {
				te.e.ObserveBGP(announce(t, w*900+10, "5.0.0.9", 5, "4.0.0.0/8",
					bgp.Path{5, 2, 9, 4}, nil))
			}
			te.e.ObservePublicTrace(mkTrace(t, w*900+100, "9.0.0.1", "4.0.0.8",
				"9.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.8"))
			all = append(all, te.e.CloseWindow(w*900)...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("signal counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("signal %d differs:\n%v\n%v", i, a[i], b[i])
		}
	}
}

func TestDisabledCommunityNeverSignals(t *testing.T) {
	geo := mapGeo{}
	rel := mapRel{}
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0
	cfg.Disabled = []Technique{TechBGPCommunity}
	e := NewEngine(cfg, testMapper{}, identityAliases, geo, rel)
	te := &testEnv{e: e, corp: corpus.New(testMapper{}, identityAliases), geo: geo, rel: rel}
	te.primeVPs(t)
	te.standardEntry(t)
	end := te.warm(t, 0, 2)
	te.e.ObserveBGP(announce(t, end+5, "6.0.0.9", 6, "4.0.0.0/8",
		bgp.Path{6, 3, 4}, bgp.Communities{bgp.MakeCommunity(3, 51000)}))
	for _, s := range te.e.CloseWindow(end) {
		if s.Technique == TechBGPCommunity {
			t.Fatalf("disabled community technique signaled: %v", s)
		}
	}
}

func TestReregisterDoesNotLeakMonitors(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)
	base := te.e.MonitorStats()
	for i := 0; i < 500; i++ {
		te.e.Reregister(en)
	}
	st := te.e.MonitorStats()
	if st.ASPathMonitors > base.ASPathMonitors+2 {
		t.Fatalf("asp monitors grew: %d -> %d", base.ASPathMonitors, st.ASPathMonitors)
	}
	if st.BurstMonitors > base.BurstMonitors+2 {
		t.Fatalf("burst monitors grew: %d -> %d", base.BurstMonitors, st.BurstMonitors)
	}
	if st.SubpathMonitors > base.SubpathMonitors+2 {
		t.Fatalf("subpath monitors grew: %d -> %d", base.SubpathMonitors, st.SubpathMonitors)
	}
	// Registrations stay one set per pair, not 500.
	if n := len(te.e.Registrations(en.Key)); n > len(te.e.Registrations(en.Key))+0 && n > 50 {
		t.Fatalf("registrations accumulated: %d", n)
	}
	// The engine still works after churn.
	end := te.warm(t, 0, 45)
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 9, 4}, nil))
	if sigs := te.e.CloseWindow(end); len(sigs) == 0 {
		t.Fatal("post-churn engine emits no signals")
	}
}

func TestTechniqueStringsAndAccessors(t *testing.T) {
	for _, tech := range []Technique{TechBGPASPath, TechBGPCommunity, TechBGPBurst,
		TechTraceSubpath, TechTraceBorder, TechIXPMembership} {
		if tech.String() == "unknown" || tech.String() == "" {
			t.Fatalf("bad name for technique %d", tech)
		}
	}
	if Technique(99).String() != "unknown" {
		t.Fatal("unknown technique name")
	}
	te := newEnv(t)
	te.primeVPs(t)
	en := te.standardEntry(t)
	if te.e.RIB() == nil {
		t.Fatal("RIB accessor nil")
	}
	counts := te.e.SignalCounts()
	if len(counts) != 6 {
		t.Fatalf("SignalCounts has %d techniques", len(counts))
	}
	end := te.warm(t, 0, 45)
	te.e.ObserveBGP(announce(t, end+10, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 2, 9, 4}, nil))
	te.e.CloseWindow(end)
	if len(te.e.Active(en.Key)) == 0 {
		t.Fatal("no active signals")
	}
	te.e.ClearActive(en.Key)
	if len(te.e.Active(en.Key)) != 0 {
		t.Fatal("ClearActive failed")
	}
	if te.e.SignalCounts()[TechBGPASPath] == 0 {
		t.Fatal("counts not incremented")
	}
}

func TestEngineToleratesDegenerateInputs(t *testing.T) {
	te := newEnv(t)
	te.primeVPs(t)
	te.standardEntry(t)
	// Empty public trace.
	te.e.ObservePublicTrace(&traceroute.Traceroute{Src: 1, Dst: 2})
	// Trace of only unresponsive hops.
	te.e.ObservePublicTrace(mkTrace(t, 5, "9.0.0.1", "4.0.0.8", "*", "*", "*"))
	// Too-specific BGP prefix is filtered, never monitored.
	u := announce(t, 6, "5.0.0.9", 5, "4.0.0.0/8", bgp.Path{5, 4}, nil)
	u.Prefix = pfx(t, "4.1.2.0/25")
	te.e.ObserveBGP(u)
	if _, ok := te.e.RIB().Route(bgp.VPKey{PeerIP: mustIP(t, "5.0.0.9"), PeerAS: 5},
		pfx(t, "4.1.2.0/25")); ok {
		t.Fatal("too-specific prefix entered the RIB")
	}
	// Withdraw for a prefix never announced.
	te.e.ObserveBGP(bgp.Update{Time: 7, PeerIP: mustIP(t, "5.0.0.9"), PeerAS: 5,
		Type: bgp.Withdraw, Prefix: pfx(t, "99.0.0.0/8")})
	if sigs := te.e.CloseWindow(0); len(sigs) != 0 {
		t.Fatalf("degenerate inputs produced signals: %v", sigs)
	}
	// RemovePair for an unknown key is a no-op.
	te.e.RemovePair(traceroute.Key{Src: 12345, Dst: 54321})
}

func TestEvaluateRefreshUnknownPair(t *testing.T) {
	te := newEnv(t)
	tr := mkTrace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "4.0.0.9")
	en, err := te.corp.Process(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := te.e.EvaluateRefresh(en); ok {
		t.Fatal("EvaluateRefresh on untracked pair reported ok")
	}
}
