package core

import (
	"fmt"
	"sort"

	"rrr/internal/anomaly"
	"rrr/internal/bgp"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// vpSlot is one vantage point inside a monitor's fixed VP set, with the
// cached (intersect, match) contribution of its current table route so
// quiet windows need no RIB walk.
type vpSlot struct {
	vp     bgp.VPKey
	pf     vpPrefix
	ci, cm int
}

// aspMonitor implements §4.1.2 for one corpus traceroute and one AS hop
// a_j: the ratio of overlapping BGP path updates whose suffix from a_j
// matches the traceroute's AS suffix.
type aspMonitor struct {
	id      int
	key     traceroute.Key
	dstIP   uint32
	aj      bgp.ASN
	suffix  bgp.Path
	before  map[bgp.ASN]bool
	slots   []vpSlot
	det     *anomaly.BitmapDetector
	borders []int
	// sameAS / sameCity record whether any monitored VP is co-located
	// with the traceroute's source (Table 1 attributes 3-5).
	sameAS, sameCity bool

	// baseline/last ratios for revocation (§4.3.2).
	baseline  float64
	hasBase   bool
	lastRatio float64
	hasLast   bool

	// quietI/quietM aggregate the cached slot contributions (the window
	// value when no monitored VP saw updates).
	quietI, quietM int
	cachePrimed    bool

	dead bool
}

// burstMonitor implements §4.1.4 for one corpus traceroute and one
// AS-suffix: the number of VPs sharing the suffix that emit duplicate
// updates per window, cross-checked against "extra AS" series.
type burstMonitor struct {
	id      int
	key     traceroute.Key
	suffix  bgp.Path
	slots   []vpSlot
	det     *anomaly.BitmapDetector
	extras  []*extraSeries
	borders []int
	lastDup int

	sameAS, sameCity bool
}

type extraKey struct {
	ak    bgp.ASN
	dstIP uint32
	j     int
}

// extraSeries counts duplicate updates among VPs that traverse a_k toward
// the destination but do not share the monitored subpath; contemporaneous
// outliers exculpate the monitored border (§4.1.4, Fig 4).
type extraSeries struct {
	ak         bgp.ASN
	slots      []vpSlot
	det        *anomaly.BitmapDetector
	outlierWin int64
}

// commMonitor implements §4.1.3 for one corpus traceroute: tracks relevant
// communities on overlapping VP routes.
type commMonitor struct {
	id   int
	dead bool
	key  traceroute.Key
	// relevant maps τ ASes to the border indices adjacent to them.
	relevant map[bgp.ASN][]int
	// overlap[vp] is the VP's overlap state, fixed at registration.
	overlap map[bgp.VPKey]*vpCommState
}

type vpCommState struct {
	pf       vpPrefix
	baseline bgp.Communities // relevant-AS communities at t0
	current  bgp.Communities
}

// vpColocation reports whether a VP shares the traceroute source's AS or
// city (Table 1 attributes 3-5).
func (e *Engine) vpColocation(vp bgp.VPKey, en *corpus.Entry) (sameAS, sameCity bool) {
	if srcAS, ok := e.mapper.ASOf(en.Key.Src); ok && srcAS == vp.PeerAS {
		sameAS = true
	}
	if e.geo != nil {
		srcCity, ok1 := e.geo.LocateCity(en.Key.Src, en.MeasuredAt)
		vpCity, ok2 := e.geo.LocateCity(vp.PeerIP, en.MeasuredAt)
		if ok1 && ok2 && srcCity == vpCity {
			sameCity = true
		}
	}
	return sameAS, sameCity
}

// registerBGPMonitors wires a corpus entry into the three BGP techniques.
// Per-pair monitors are indexed on the owning engine; the extra-AS series
// (§4.1.4's exculpation set) are created in (or joined from) the shared
// state, which all shards of a Sharded engine point at.
func (e *Engine) registerBGPMonitors(en *corpus.Entry) {
	vps := e.rib.VPs()
	tauASes := make(map[bgp.ASN]int, len(en.ASPath)) // AS → hop index
	for i, as := range en.ASPath {
		tauASes[as] = i
	}

	// Resolve each VP's route, prefix, and first intersection with τ.
	type vpInfo struct {
		vp    bgp.VPKey
		pf    vpPrefix
		path  bgp.Path
		first int // τ hop index of first intersection, -1 if none
	}
	var infos []vpInfo
	for _, vp := range vps {
		rt, ok := e.rib.Lookup(vp, en.Key.Dst)
		if !ok {
			continue
		}
		path := rt.ASPath
		first := -1
		for idx, as := range en.ASPath {
			if path.Contains(as) {
				first = idx
				break
			}
		}
		infos = append(infos, vpInfo{
			vp: vp, pf: vpPrefix{vp: vp, pf: rt.Prefix}, path: path, first: first,
		})
	}

	// §4.1.2: one monitor per (τ, a_j) with a non-empty fixed VP set of
	// VPs that first intersect τ at a_j.
	byFirst := make(map[int][]vpInfo)
	for _, in := range infos {
		if in.first >= 0 {
			byFirst[in.first] = append(byFirst[in.first], in)
		}
	}
	var firstIdxs []int
	for j := range byFirst {
		firstIdxs = append(firstIdxs, j)
	}
	sort.Ints(firstIdxs)
	if e.cfg.disabled(TechBGPASPath) {
		firstIdxs = nil
	}
	for _, j := range firstIdxs {
		group := byFirst[j]
		m := &aspMonitor{
			id:     e.monitorID("asp", en.Key, en.ASPath[j:].String()),
			key:    en.Key,
			dstIP:  en.Key.Dst,
			aj:     en.ASPath[j],
			suffix: en.ASPath[j:].Clone(),
			before: make(map[bgp.ASN]bool, j),
			det:    anomaly.NewBitmap(),
		}
		// A refresh that kept this portion of the path re-registers an
		// identical monitor: keep the warmed-up detector instead of
		// cold-starting (a cold detector is blind for ~MinObservations
		// windows after every refresh).
		if st := e.retired[en.Key]["asp:"+m.suffix.String()]; st != nil {
			if det, ok := st.det.(*anomaly.BitmapDetector); ok {
				m.det = det
				m.baseline, m.hasBase = st.baseline, st.hasBase
			}
		}
		for _, as := range en.ASPath[:j] {
			m.before[as] = true
		}
		for _, in := range group {
			slot := vpSlot{vp: in.vp, pf: in.pf}
			slot.ci, slot.cm = m.contribution(in.path)
			m.quietI += slot.ci
			m.quietM += slot.cm
			m.slots = append(m.slots, slot)
			e.aspByVP[in.pf] = append(e.aspByVP[in.pf], m)
			sa, sc := e.vpColocation(in.vp, en)
			m.sameAS = m.sameAS || sa
			m.sameCity = m.sameCity || sc
		}
		m.cachePrimed = true
		m.borders = bordersForSuffix(en, m.suffix)
		e.asp = append(e.asp, m)
		e.aspByKey[en.Key] = append(e.aspByKey[en.Key], m)
		e.addReg(en.Key, Registration{MonitorID: m.id, Technique: TechBGPASPath, Borders: m.borders})
	}

	// §4.1.4: one monitor per AS-suffix with enough VPs sharing it.
	for j := 0; !e.cfg.disabled(TechBGPBurst) && j+2 <= len(en.ASPath); j++ {
		suffix := en.ASPath[j:]
		var shared []vpInfo
		for _, in := range infos {
			if pathEndsWith(in.path, suffix) {
				shared = append(shared, in)
			}
		}
		if len(shared) < e.cfg.MinSuffixVPs {
			continue
		}
		bm := &burstMonitor{
			id:     e.monitorID("burst", en.Key, suffix.String()),
			key:    en.Key,
			suffix: suffix.Clone(),
			det:    anomaly.NewBitmap(),
		}
		if st := e.retired[en.Key]["burst:"+bm.suffix.String()]; st != nil {
			if det, ok := st.det.(*anomaly.BitmapDetector); ok {
				bm.det = det
			}
		}
		for _, in := range shared {
			bm.slots = append(bm.slots, vpSlot{vp: in.vp, pf: in.pf})
			sa, sc := e.vpColocation(in.vp, en)
			bm.sameAS = bm.sameAS || sa
			bm.sameCity = bm.sameCity || sc
		}
		bm.borders = bordersForSuffix(en, suffix)
		// Extra ASes: on ≥2 shared VPs' paths but not on τ.
		counts := make(map[bgp.ASN]int)
		for _, in := range shared {
			for _, as := range in.path {
				if _, onTau := tauASes[as]; !onTau {
					counts[as]++
				}
			}
		}
		var aks []bgp.ASN
		for ak, n := range counts {
			if n >= 2 {
				aks = append(aks, ak)
			}
		}
		sort.Slice(aks, func(x, y int) bool { return aks[x] < aks[y] })
		for _, ak := range aks {
			ek := extraKey{ak: ak, dstIP: en.Key.Dst, j: j}
			es, ok := e.sh.extras[ek]
			if !ok {
				es = &extraSeries{ak: ak, det: anomaly.NewBitmap()}
				// W set: VPs traversing a_k toward d but not sharing the
				// whole suffix.
				for _, in := range infos {
					if in.path.Contains(ak) && !pathEndsWith(in.path, suffix) {
						es.slots = append(es.slots, vpSlot{vp: in.vp, pf: in.pf})
					}
				}
				e.sh.extras[ek] = es
				e.sh.extrasSorted = nil
			}
			bm.extras = append(bm.extras, es)
		}
		e.bursts = append(e.bursts, bm)
		e.addReg(en.Key, Registration{MonitorID: bm.id, Technique: TechBGPBurst, Borders: bm.borders})
	}

	// §4.1.3: one community monitor per τ over VPs overlapping an
	// AS-suffix of τ.
	cm := &commMonitor{
		id:       e.monitorID("comm", en.Key, ""),
		key:      en.Key,
		relevant: make(map[bgp.ASN][]int),
		overlap:  make(map[bgp.VPKey]*vpCommState),
	}
	anyOverlap := false
	var allBorders []int
	if e.cfg.disabled(TechBGPCommunity) {
		infos = nil // do not register or index community monitors
	}
	for _, in := range infos {
		// Longest AS-suffix of τ shared with the VP path's tail.
		j := longestSharedSuffix(in.path, en.ASPath)
		if j < 0 {
			continue
		}
		anyOverlap = true
		rt, _ := e.rib.Lookup(in.vp, en.Key.Dst)
		st := &vpCommState{pf: in.pf}
		if rt != nil {
			st.current = rt.Communities.Clone()
			st.baseline = st.current
		}
		cm.overlap[in.vp] = st
		for _, as := range en.ASPath[j:] {
			if _, ok := cm.relevant[as]; !ok {
				cm.relevant[as] = bordersForAS(en, as)
			}
		}
		e.commByVP[in.pf] = append(e.commByVP[in.pf], cm)
	}
	if anyOverlap {
		seen := make(map[int]bool)
		for _, bs := range cm.relevant {
			for _, b := range bs {
				if !seen[b] {
					seen[b] = true
					allBorders = append(allBorders, b)
				}
			}
		}
		sort.Ints(allBorders)
		e.comms[en.Key] = cm
		e.addReg(en.Key, Registration{MonitorID: cm.id, Technique: TechBGPCommunity, Borders: allBorders})
	}
	delete(e.retired, en.Key)
}

// pathEndsWith reports whether path's tail equals suffix.
func pathEndsWith(path, suffix bgp.Path) bool {
	if len(suffix) > len(path) {
		return false
	}
	return path[len(path)-len(suffix):].Equal(suffix)
}

// longestSharedSuffix returns the smallest j such that path ends with
// tau[j:], or -1 when not even the origin is shared.
func longestSharedSuffix(path, tau bgp.Path) int {
	for j := 0; j < len(tau); j++ {
		if pathEndsWith(path, tau[j:]) {
			return j
		}
	}
	return -1
}

// bordersForSuffix returns the border indices of an entry that fall within
// the AS suffix: crossings out of suffix ASes plus the crossing entering
// the suffix head.
func bordersForSuffix(en *corpus.Entry, suffix bgp.Path) []int {
	in := make(map[bgp.ASN]bool, len(suffix))
	for _, as := range suffix {
		in[as] = true
	}
	var out []int
	head := suffix[0]
	for k, b := range en.Borders {
		if in[b.FromAS] || b.ToAS == head {
			out = append(out, k)
		}
	}
	return out
}

// bordersForAS returns the border indices adjacent to an AS.
func bordersForAS(en *corpus.Entry, as bgp.ASN) []int {
	var out []int
	for k, b := range en.Borders {
		if b.FromAS == as || b.ToAS == as {
			out = append(out, k)
		}
	}
	return out
}

// ObserveBGP ingests one BGP update. Updates must be fed in time order;
// CloseWindow must be called at each window boundary.
func (e *Engine) ObserveBGP(u bgp.Update) {
	if bgp.FilterTooSpecific(u.Prefix) {
		return
	}
	e.sh.observeBGPChange(u, e.rib.Apply(u))
}

// closeBGPWindow evaluates the engine's per-pair BGP series for the window
// starting at ws and returns signals. The shared extra-AS series (burst
// exculpation) and the commChanged set were already evaluated once for the
// window by sharedState.closeShared; this function only reads them.
func (e *Engine) closeBGPWindow(ws int64, sc *sharedClose) []Signal {
	var sigs []Signal
	commChanged := sc.commChanged

	// §4.1.4 burst monitors.
	for _, bm := range e.bursts {
		dupCount := 0
		for i := range bm.slots {
			if st, ok := e.sh.winUpdates[bm.slots[i].pf]; ok && st.dup {
				dupCount++
			}
		}
		bm.lastDup = dupCount
		outlier := bm.det.Add(float64(dupCount))
		// The technique's premise is *contemporaneous* duplicates from
		// multiple peers sharing the subpath (§4.1.4): a genuine border
		// change re-announces from every peer routing across it, so a
		// burst must involve a meaningful share of the suffix's VPs, not
		// a coincidence of unrelated IGP noise.
		quorum := 2
		if q := (len(bm.slots) + 2) / 3; q > quorum {
			quorum = q
		}
		if !outlier || dupCount < quorum {
			continue
		}
		dupSlots := dupSlots(e, bm.slots)
		allEchoes := true
		for _, slot := range dupSlots {
			if !commChanged[slot.pf.pf] {
				allEchoes = false
				break
			}
		}
		if allEchoes {
			continue
		}
		// Outlier: is there a VP whose duplicate cannot be explained by a
		// contemporaneous burst on an extra AS it traverses?
		unexplained := len(bm.extras) == 0
		for _, slot := range dupSlots {
			explained := false
			for _, es := range bm.extras {
				if es.outlierWin != ws {
					continue
				}
				if vpTraverses(e, slot, es.ak) {
					explained = true
					break
				}
			}
			if !explained {
				unexplained = true
				break
			}
		}
		if !unexplained {
			continue
		}
		sigs = append(sigs, Signal{
			Technique:   TechBGPBurst,
			Key:         bm.key,
			MonitorID:   bm.id,
			WindowStart: ws,
			Borders:     bm.borders,
			Detail:      fmt.Sprintf("dup burst on suffix %v", bm.suffix),
			Score:       bm.det.Score(),
			VPCount:     dupCount,
			ASOverlap:   len(bm.suffix),
			SameASVP:    bm.sameAS,
			SameCityVP:  bm.sameCity,
		})
	}

	// §4.1.2 AS-path monitors. The window value combines the cached
	// contributions of quiet VPs with the update paths of VPs that saw
	// changes this window; caches refresh to the post-window table route.
	for _, m := range e.asp {
		if m.dead {
			continue
		}
		intersect, match := m.quietI, m.quietM
		for i := range m.slots {
			slot := &m.slots[i]
			st, dirty := e.sh.winUpdates[slot.pf]
			if !dirty {
				continue
			}
			// The cached value covers the window-start route; add the
			// update paths on top (each counts as one observed path,
			// §4.1.2 counts path updates).
			for _, p := range st.paths {
				ci, cm := m.contribution(p)
				intersect += ci
				match += cm
			}
			// Refresh the cache to the current table route for the
			// following windows.
			var ni, nm int
			if rt, ok := e.rib.Route(slot.pf.vp, slot.pf.pf); ok {
				ni, nm = m.contribution(rt.ASPath)
			}
			m.quietI += ni - slot.ci
			m.quietM += nm - slot.cm
			slot.ci, slot.cm = ni, nm
		}
		if intersect == 0 {
			m.hasLast = false
			continue // missing value, not an outlier (§4.1.2)
		}
		ratio := float64(match) / float64(intersect)
		if !m.hasBase {
			m.baseline, m.hasBase = ratio, true
		}
		m.lastRatio, m.hasLast = ratio, true
		if m.det.Add(ratio) {
			sigs = append(sigs, Signal{
				Technique:   TechBGPASPath,
				Key:         m.key,
				MonitorID:   m.id,
				WindowStart: ws,
				Borders:     m.borders,
				Detail:      fmt.Sprintf("P_ratio outlier at %s", m.aj),
				Score:       m.det.Score(),
				VPCount:     len(m.slots),
				ASOverlap:   len(m.suffix),
				SameASVP:    m.sameAS,
				SameCityVP:  m.sameCity,
			})
		}
	}

	// §4.1.3 community events.
	sigs = append(sigs, e.processCommEvents(ws)...)
	return sigs
}

func dupSlots(e *Engine, slots []vpSlot) []*vpSlot {
	var out []*vpSlot
	for i := range slots {
		if st, ok := e.sh.winUpdates[slots[i].pf]; ok && st.dup {
			out = append(out, &slots[i])
		}
	}
	return out
}

// vpTraverses reports whether the VP's current route crosses as.
func vpTraverses(e *Engine, slot *vpSlot, as bgp.ASN) bool {
	rt, ok := e.rib.Route(slot.pf.vp, slot.pf.pf)
	if !ok {
		return false
	}
	return rt.ASPath.Contains(as)
}

// contribution scores one AS path against the monitor: (1,1) when it first
// intersects τ at a_j and matches the suffix, (1,0) intersect-only, (0,0)
// otherwise.
func (m *aspMonitor) contribution(p bgp.Path) (int, int) {
	if p == nil || !m.firstIntersects(p) {
		return 0, 0
	}
	if p.Suffix(m.aj).Equal(m.suffix) {
		return 1, 1
	}
	return 1, 0
}

func (m *aspMonitor) firstIntersects(p bgp.Path) bool {
	if !p.Contains(m.aj) {
		return false
	}
	for _, as := range p {
		if m.before[as] {
			return false
		}
	}
	return true
}

func sortedExtras(m map[extraKey]*extraSeries) []*extraSeries {
	keys := make([]extraKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dstIP != keys[j].dstIP {
			return keys[i].dstIP < keys[j].dstIP
		}
		if keys[i].ak != keys[j].ak {
			return keys[i].ak < keys[j].ak
		}
		return keys[i].j < keys[j].j
	})
	out := make([]*extraSeries, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// processCommEvents turns the window's community change records into
// §4.1.3 signals, applying the paper's two caveats and the calibration
// filter.
func (e *Engine) processCommEvents(ws int64) []Signal {
	var sigs []Signal
	// One signal per (monitor, community) per window: several VPs
	// reporting the same community change describe one network event.
	emitted := make(map[[2]uint64]bool)
	for _, ev := range e.sh.winComms {
		pf := vpPrefix{vp: ev.vp, pf: ev.prefix}
		monitors := e.commByVP[pf]
		if len(monitors) == 0 {
			continue
		}
		added := ev.cur.Diff(ev.prev)
		removed := ev.prev.Diff(ev.cur)
		for _, cm := range monitors {
			if cm.dead {
				continue
			}
			st := cm.overlap[ev.vp]
			if st == nil {
				continue
			}
			var borders []int
			var detail bgp.Community
			consider := func(c bgp.Community, isAdd bool) {
				bs, relevant := cm.relevant[c.AS()]
				if !relevant {
					return
				}
				// Calibration filter (Appendix B): skip pruned communities.
				if e.Calib.CommunityPruned(c) {
					return
				}
				// Caveat 2: an added community already on an overlapping
				// path from another VP is not a new change signal.
				if isAdd && e.communityOnOtherVP(cm, ev.vp, c) {
					return
				}
				borders = append(borders, bs...)
				if detail == 0 {
					detail = c
				}
			}
			for _, c := range added {
				consider(c, true)
			}
			for _, c := range removed {
				consider(c, false)
			}
			st.current = ev.cur.Clone()
			if len(borders) == 0 {
				continue
			}
			dk := [2]uint64{uint64(cm.id), uint64(detail)}
			if emitted[dk] {
				continue
			}
			emitted[dk] = true
			borders = dedupInts(borders)
			sigs = append(sigs, Signal{
				Technique:   TechBGPCommunity,
				Key:         cm.key,
				MonitorID:   cm.id,
				WindowStart: ws,
				Borders:     borders,
				Detail:      detail.String(),
				Comm:        detail,
				VPCount:     1,
			})
		}
	}
	return sigs
}

// communityOnOtherVP checks whether the community was already present on
// another overlapping VP's route *before* this window's changes; VPs whose
// routes changed in the same window are compared at their window-start
// state, so a simultaneous multi-VP community change is not self-masking.
func (e *Engine) communityOnOtherVP(cm *commMonitor, except bgp.VPKey, c bgp.Community) bool {
	for vp, st := range cm.overlap {
		if vp == except {
			continue
		}
		var comms bgp.Communities
		if ws, ok := e.sh.winUpdates[st.pf]; ok && ws.startOK {
			comms = ws.startComms
		} else if rt, ok := e.rib.Route(st.pf.vp, st.pf.pf); ok {
			comms = rt.Communities
		}
		for _, have := range comms {
			if have == c {
				return true
			}
		}
	}
	return false
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
