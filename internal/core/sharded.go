package core

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// shardFlushThreshold bounds how many observations buffer before the
// dispatcher forces a drain, capping memory and giving feed readers
// backpressure.
const shardFlushThreshold = 4096

// shardOp is one buffered broadcast observation: either a classified BGP
// change or a prepared public traceroute.
type shardOp struct {
	update bgp.Update
	change bgp.Change
	trace  *preparedTrace
}

// Sharded partitions an Engine across Config.Shards shards keyed by corpus
// pair, so ObserveBGP, ObservePublicTrace, and especially CloseWindow fan
// out across a bounded worker pool (one goroutine per shard, spawned only
// while a call is draining — the engine owns no long-lived goroutines and
// needs no Close).
//
// The signal stream is byte-identical to the serial engine's for the same
// feed, for any shard count:
//
//   - All shards share one RIB, calibrator, patcher, and monitor-ID
//     allocator. The dispatcher applies each update and patches each
//     traceroute exactly once, then broadcasts the immutable result.
//   - Per-pair monitors live only on the shard owning the pair; monitors
//     shared across pairs (subpaths, border-router series, extra-AS
//     series) are replicated on every shard from the moment any pair
//     first registers them, so every replica sees the full observation
//     stream and carries the same detector state as the serial engine's
//     single instance.
//   - Each shard processes the broadcast stream in feed order, and merged
//     window signals pass through a total-order sort.
//
// Registrations, refresh evaluation, and queries run on the caller's
// goroutine between drains, exactly as in the serial engine. Sharded is
// safe for concurrent use, but the feed semantics are unchanged: updates
// and traceroutes must still arrive in time order, so concurrent feeders
// must serialize externally (the Monitor facade does).
type Sharded struct {
	mu      sync.Mutex
	cfg     Config
	shards  []*Engine
	rib     *bgp.RIB
	patcher *traceroute.Patcher
	mapper  traceroute.Mapper
	aliases bordermap.AliasOracle

	// Calib is the shared §4.3 calibrator; exported like Engine.Calib.
	Calib *Calibrator

	ops []shardOp
	met shardMetrics
}

// NewSharded builds a sharded engine. cfg.Shards of 0 means
// runtime.GOMAXPROCS(0); 1 runs the serial path with no buffering.
func NewSharded(cfg Config, m traceroute.Mapper, aliases bordermap.AliasOracle, geo Geolocator, rel RelOracle) *Sharded {
	cfg = cfg.withDefaults()
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{
		cfg:     cfg,
		rib:     bgp.NewRIB(),
		patcher: traceroute.NewPatcher(),
		mapper:  m,
		aliases: aliases,
		Calib:   NewCalibrator(cfg.CalibrationWindows, cfg.CommunityFPQuota),
	}
	ids := newIDAlloc()
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, newEngineWith(cfg, m, aliases, geo, rel, s.rib, ids, s.Calib, s.patcher))
	}
	s.met = newShardMetrics(n)
	return s
}

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// RIB exposes the shared BGP table view (read-only use).
func (s *Sharded) RIB() *bgp.RIB { return s.rib }

// shardIdxOf maps a corpus pair to its owning shard index.
func (s *Sharded) shardIdxOf(k traceroute.Key) int {
	if len(s.shards) == 1 {
		return 0
	}
	h := uint64(k.Src)*0x9e3779b185ebca87 + uint64(k.Dst)*0xc2b2ae3d27d4eb4f
	h ^= h >> 33
	return int(h % uint64(len(s.shards)))
}

// shardOf maps a corpus pair to its owning shard.
func (s *Sharded) shardOf(k traceroute.Key) *Engine {
	return s.shards[s.shardIdxOf(k)]
}

// drainLocked replays the buffered observations into every shard, one
// worker goroutine per shard, and waits for all of them. Shards touch only
// shard-local state during replay, so the only synchronization needed is
// the final barrier.
func (s *Sharded) drainLocked() {
	if len(s.ops) == 0 {
		return
	}
	ops := s.ops
	s.ops = nil
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			for j := range ops {
				if ops[j].trace != nil {
					e.observePrepared(ops[j].trace)
				} else {
					e.observeBGPChange(ops[j].update, ops[j].change)
				}
			}
			s.met.obs[i].Add(uint64(len(ops)))
		}(i, sh)
	}
	wg.Wait()
}

// ObserveBGP ingests one BGP update: it is applied to the shared RIB once
// and the classified change is broadcast to every shard's window state.
func (s *Sharded) ObserveBGP(u bgp.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shards) == 1 {
		s.shards[0].ObserveBGP(u)
		s.met.obs[0].Inc()
		return
	}
	if bgp.FilterTooSpecific(u.Prefix) {
		return
	}
	s.ops = append(s.ops, shardOp{update: u, change: s.rib.Apply(u)})
	if len(s.ops) >= shardFlushThreshold {
		s.drainLocked()
	}
}

// ObservePublicTrace ingests one public traceroute: patching and border
// mapping run once on the caller's goroutine and the prepared result is
// broadcast to every shard.
func (s *Sharded) ObservePublicTrace(t *traceroute.Traceroute) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shards) == 1 {
		s.shards[0].ObservePublicTrace(t)
		s.met.obs[0].Inc()
		return
	}
	s.ops = append(s.ops, shardOp{trace: prepareTrace(s.patcher, s.mapper, s.aliases, t)})
	if len(s.ops) >= shardFlushThreshold {
		s.drainLocked()
	}
}

// CloseWindow finishes the window starting at ws on every shard in
// parallel (each worker first replays any buffered observations, in feed
// order, then closes its shard) and returns the merged, totally-ordered
// signal stream.
func (s *Sharded) CloseWindow(ws int64) []Signal {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shards) == 1 {
		start := time.Now()
		sigs := s.shards[0].CloseWindow(ws)
		s.met.close[0].Observe(time.Since(start).Seconds())
		return sigs
	}
	ops := s.ops
	s.ops = nil
	results := make([][]Signal, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			start := time.Now()
			for j := range ops {
				if ops[j].trace != nil {
					e.observePrepared(ops[j].trace)
				} else {
					e.observeBGPChange(ops[j].update, ops[j].change)
				}
			}
			results[i] = e.CloseWindow(ws)
			s.met.obs[i].Add(uint64(len(ops)))
			s.met.close[i].Observe(time.Since(start).Seconds())
		}(i, sh)
	}
	wg.Wait()
	var sigs []Signal
	for _, r := range results {
		sigs = append(sigs, r...)
	}
	sortSignals(sigs)
	return sigs
}

// AddCorpusEntry registers a processed corpus traceroute: fully on the
// owning shard, as shared-series replicas everywhere else.
func (s *Sharded) AddCorpusEntry(en *corpus.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	i := s.shardIdxOf(en.Key)
	owner := s.shards[i]
	owner.AddCorpusEntry(en)
	s.met.pairs[i].Set(int64(owner.NumEntries()))
	for _, sh := range s.shards {
		if sh != owner {
			sh.shadowRegister(en)
		}
	}
}

// Reregister replaces the pair's entry and monitors with a fresh
// measurement, clearing its active signals.
func (s *Sharded) Reregister(en *corpus.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	owner := s.shardOf(en.Key)
	owner.Reregister(en)
	for _, sh := range s.shards {
		if sh != owner {
			sh.shadowRegister(en)
		}
	}
}

// RemovePair unregisters a corpus pair. Shared-series replicas persist on
// all shards, exactly as the serial engine keeps shared monitors alive
// after their last watcher leaves.
func (s *Sharded) RemovePair(k traceroute.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	i := s.shardIdxOf(k)
	s.shards[i].RemovePair(k)
	s.met.pairs[i].Set(int64(s.shards[i].NumEntries()))
}

// EvaluateRefresh scores the pair's potential signals against a new
// measurement (see Engine.EvaluateRefresh).
func (s *Sharded) EvaluateRefresh(en *corpus.Entry) (bordermap.ChangeClass, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	return s.shardOf(en.Key).EvaluateRefresh(en)
}

// Entry returns the registered corpus entry for a pair.
func (s *Sharded) Entry(k traceroute.Key) (*corpus.Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOf(k).Entry(k)
}

// Registrations returns the potential signals covering a corpus pair.
func (s *Sharded) Registrations(k traceroute.Key) []Registration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOf(k).Registrations(k)
}

// Active returns the currently-active (unrevoked) signals for a pair.
func (s *Sharded) Active(k traceroute.Key) []Signal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOf(k).Active(k)
}

// ClearActive resets a pair's signal state.
func (s *Sharded) ClearActive(k traceroute.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardOf(k).ClearActive(k)
}

// RestoreActive re-injects snapshot-restored signals, routing each to the
// shard owning its pair (see Engine.RestoreActive).
func (s *Sharded) RestoreActive(sigs []Signal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	perShard := make(map[*Engine][]Signal)
	for _, sig := range sigs {
		sh := s.shardOf(sig.Key)
		perShard[sh] = append(perShard[sh], sig)
	}
	for sh, batch := range perShard {
		sh.RestoreActive(batch)
	}
}

// SignalCounts returns per-technique signal totals across all shards.
func (s *Sharded) SignalCounts() map[Technique]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Technique]int, int(numTechniques))
	for _, sh := range s.shards {
		for t, n := range sh.SignalCounts() {
			out[t] += n
		}
	}
	return out
}

// ActivePairs counts pairs with at least one active signal. A pair's
// active signals live only on its owning shard (shadow replicas carry no
// watchers), so the per-shard sum is exact.
func (s *Sharded) ActivePairs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sh := range s.shards {
		n += sh.ActivePairs()
	}
	return n
}

// RevocationStats sums §4.3.2 revocation counters across shards.
func (s *Sharded) RevocationStats() (signals, pairEvents int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		a, b := sh.RevocationStats()
		signals += a
		pairEvents += b
	}
	return signals, pairEvents
}

// WindowsClosed reports how many CloseWindow rounds have run.
func (s *Sharded) WindowsClosed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[0].WindowsClosed()
}

// MonitorStats reports monitor state across all shards. Per-pair monitors
// (AS-path, burst, community) are summed over the shards that own them;
// shared series (subpaths, borders, extras, IXP state) are replicated
// identically on every shard, so shard 0's view is the deduplicated total.
func (s *Sharded) MonitorStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	st := s.shards[0].MonitorStats()
	if len(s.shards) == 1 {
		return st
	}
	st.ASPathMonitors, st.BurstMonitors, st.CommunityTargets = 0, 0, 0
	for _, sh := range s.shards {
		ss := sh.MonitorStats()
		st.ASPathMonitors += ss.ASPathMonitors
		st.BurstMonitors += ss.BurstMonitors
		st.CommunityTargets += ss.CommunityTargets
	}
	return st
}

// SetInitialIXPMembership seeds §4.2.3's membership snapshot on every
// shard.
func (s *Sharded) SetInitialIXPMembership(members map[int][]bgp.ASN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.SetInitialIXPMembership(members)
	}
}

// AllowPrivatePeerSignals enables IXP signals through private peers of the
// AS (§4.2.3's learned exception) on every shard.
func (s *Sharded) AllowPrivatePeerSignals(as bgp.ASN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.AllowPrivatePeerSignals(as)
	}
}

// RefreshPlan selects up to budget flagged pairs to remeasure (§4.3.1),
// planning over the union of every shard's active signals.
func (s *Sharded) RefreshPlan(budget int, rng *rand.Rand) []traceroute.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	if len(s.shards) == 1 {
		return s.shards[0].RefreshPlan(budget, rng)
	}
	active := make(map[traceroute.Key][]Signal)
	regs := make(map[traceroute.Key][]Registration)
	for _, sh := range s.shards {
		for k, v := range sh.active {
			active[k] = v
		}
		for k, v := range sh.regs {
			regs[k] = v
		}
	}
	return refreshPlan(active, regs, s.Calib, budget, rng)
}
