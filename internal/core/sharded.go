package core

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// Sharded partitions an Engine across Config.Shards shards keyed by corpus
// pair, so CloseWindow's per-pair monitor evaluation fans out across a
// bounded worker pool (one goroutine per shard, spawned only while a close
// is running — the engine owns no long-lived goroutines and needs no
// Close).
//
// The signal stream is byte-identical to the serial engine's for the same
// feed, for any shard count:
//
//   - All shards share one RIB, calibrator, patcher, monitor-ID allocator,
//     and one sharedState (window fold, extra-AS series, subpath monitors,
//     border-router series, IXP membership). The dispatcher applies each
//     update and patches each traceroute exactly once and folds it into
//     the shared state exactly once — the same total work as serial, where
//     earlier designs replayed the stream into every shard.
//   - Per-pair monitors live only on the shard owning the pair.
//   - CloseWindow runs the shared phase once (extra-AS detectors, subpath
//     and border series advances, in the serial engine's order), routes
//     the resulting signals to their owning shards, runs the per-pair
//     phase concurrently, and k-way-merges the per-shard sorted streams.
//
// Registrations, refresh evaluation, and queries run on the caller's
// goroutine, exactly as in the serial engine. Sharded is safe for
// concurrent use, but the feed semantics are unchanged: updates and
// traceroutes must still arrive in time order, so concurrent feeders must
// serialize externally (the Monitor facade does).
type Sharded struct {
	mu      sync.Mutex
	cfg     Config
	shards  []*Engine
	sh      *sharedState
	rib     *bgp.RIB
	patcher *traceroute.Patcher
	mapper  traceroute.Mapper
	aliases bordermap.AliasOracle

	// Calib is the shared §4.3 calibrator; exported like Engine.Calib.
	Calib *Calibrator

	met shardMetrics
}

// NewSharded builds a sharded engine. cfg.Shards of 0 means
// runtime.GOMAXPROCS(0); 1 runs the serial path with no fan-out.
func NewSharded(cfg Config, m traceroute.Mapper, aliases bordermap.AliasOracle, geo Geolocator, rel RelOracle) *Sharded {
	cfg = cfg.withDefaults()
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{
		cfg:     cfg,
		sh:      newSharedState(cfg, geo),
		rib:     bgp.NewRIB(),
		patcher: traceroute.NewPatcher(),
		mapper:  m,
		aliases: aliases,
		Calib:   NewCalibrator(cfg.CalibrationWindows, cfg.CommunityFPQuota),
	}
	ids := newIDAlloc()
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, newEngineWith(cfg, m, aliases, geo, rel, s.rib, ids, s.Calib, s.patcher, s.sh))
	}
	s.met = newShardMetrics(n)
	return s
}

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// RIB exposes the shared BGP table view (read-only use).
func (s *Sharded) RIB() *bgp.RIB { return s.rib }

// shardIdxOf maps a corpus pair to its owning shard index.
func (s *Sharded) shardIdxOf(k traceroute.Key) int {
	if len(s.shards) == 1 {
		return 0
	}
	h := uint64(k.Src)*0x9e3779b185ebca87 + uint64(k.Dst)*0xc2b2ae3d27d4eb4f
	h ^= h >> 33
	return int(h % uint64(len(s.shards)))
}

// shardOf maps a corpus pair to its owning shard.
func (s *Sharded) shardOf(k traceroute.Key) *Engine {
	return s.shards[s.shardIdxOf(k)]
}

// ObserveBGP ingests one BGP update: it is applied to the shared RIB once
// and the classified change is folded into the shared window state once.
// No per-shard work happens until CloseWindow.
func (s *Sharded) ObserveBGP(u bgp.Update) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bgp.FilterTooSpecific(u.Prefix) {
		return
	}
	s.sh.observeBGPChange(u, s.rib.Apply(u))
	s.met.obs.Inc()
}

// ObservePublicTrace ingests one public traceroute: patching, border
// mapping, and the shared-series observation all run exactly once on the
// caller's goroutine. Only a §4.2.3 IXP join fans out per shard, because
// turning a join into signals scans each shard's own corpus slice.
func (s *Sharded) ObservePublicTrace(t *traceroute.Traceroute) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pt := prepareTrace(s.patcher, s.mapper, s.aliases, t)
	s.sh.observeTrace(pt, func(ixp int, member bgp.ASN, when int64) {
		for _, e := range s.shards {
			e.pendingIXP = append(e.pendingIXP, e.ixpJoinSignals(ixp, member, when)...)
		}
	})
	s.met.obs.Inc()
}

// CloseWindow finishes the window starting at ws: the shared close phase
// runs once on the caller's goroutine, the per-shard phase runs on one
// worker per shard, and the per-shard sorted streams are k-way merged into
// the totally-ordered result.
func (s *Sharded) CloseWindow(ws int64) []Signal {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shards) == 1 {
		start := time.Now()
		sigs := s.shards[0].CloseWindow(ws)
		s.met.close[0].Observe(time.Since(start).Seconds())
		return sigs
	}
	sc := s.sh.closeShared(ws, ws+s.cfg.WindowSec)

	// Route the shared-series signals to the shards owning their pairs;
	// each bucket preserves the serial emission order for its keys.
	buckets := make([][]Signal, len(s.shards))
	for _, sig := range sc.traceSigs {
		i := s.shardIdxOf(sig.Key)
		buckets[i] = append(buckets[i], sig)
	}

	results := make([][]Signal, len(s.shards))
	if runtime.GOMAXPROCS(0) == 1 {
		// One executor: goroutine fan-out only adds scheduling overhead.
		for i, e := range s.shards {
			start := time.Now()
			results[i] = e.closeOwned(ws, sc, buckets[i])
			s.met.close[i].Observe(time.Since(start).Seconds())
		}
	} else {
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			wg.Add(1)
			go func(i int, e *Engine) {
				defer wg.Done()
				start := time.Now()
				results[i] = e.closeOwned(ws, sc, buckets[i])
				s.met.close[i].Observe(time.Since(start).Seconds())
			}(i, sh)
		}
		wg.Wait()
	}
	s.sh.resetWindow()
	return mergeSortedSignals(results)
}

// AddCorpusEntry registers a processed corpus traceroute on the shard
// owning its pair. Shared series (extra-AS, subpath, border-router) are
// created in or joined from the single shared state, so no replication is
// needed on the other shards.
func (s *Sharded) AddCorpusEntry(en *corpus.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.shardIdxOf(en.Key)
	owner := s.shards[i]
	owner.AddCorpusEntry(en)
	s.met.pairs[i].Set(int64(owner.NumEntries()))
}

// Reregister replaces the pair's entry and monitors with a fresh
// measurement, clearing its active signals.
func (s *Sharded) Reregister(en *corpus.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardOf(en.Key).Reregister(en)
}

// RemovePair unregisters a corpus pair. Shared series persist, exactly as
// the serial engine keeps shared monitors alive after their last watcher
// leaves.
func (s *Sharded) RemovePair(k traceroute.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.shardIdxOf(k)
	s.shards[i].RemovePair(k)
	s.met.pairs[i].Set(int64(s.shards[i].NumEntries()))
}

// EvaluateRefresh scores the pair's potential signals against a new
// measurement (see Engine.EvaluateRefresh).
func (s *Sharded) EvaluateRefresh(en *corpus.Entry) (bordermap.ChangeClass, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOf(en.Key).EvaluateRefresh(en)
}

// Entry returns the registered corpus entry for a pair.
func (s *Sharded) Entry(k traceroute.Key) (*corpus.Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOf(k).Entry(k)
}

// Registrations returns the potential signals covering a corpus pair.
func (s *Sharded) Registrations(k traceroute.Key) []Registration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOf(k).Registrations(k)
}

// Active returns the currently-active (unrevoked) signals for a pair.
func (s *Sharded) Active(k traceroute.Key) []Signal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shardOf(k).Active(k)
}

// ClearActive resets a pair's signal state.
func (s *Sharded) ClearActive(k traceroute.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardOf(k).ClearActive(k)
}

// RestoreActive re-injects snapshot-restored signals, routing each to the
// shard owning its pair (see Engine.RestoreActive).
func (s *Sharded) RestoreActive(sigs []Signal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	perShard := make(map[*Engine][]Signal)
	for _, sig := range sigs {
		sh := s.shardOf(sig.Key)
		perShard[sh] = append(perShard[sh], sig)
	}
	for sh, batch := range perShard {
		sh.RestoreActive(batch)
	}
}

// SignalCounts returns per-technique signal totals across all shards.
func (s *Sharded) SignalCounts() map[Technique]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Technique]int, int(numTechniques))
	for _, sh := range s.shards {
		for t, n := range sh.SignalCounts() {
			out[t] += n
		}
	}
	return out
}

// ActivePairs counts pairs with at least one active signal. A pair's
// active signals live only on its owning shard, so the per-shard sum is
// exact.
func (s *Sharded) ActivePairs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sh := range s.shards {
		n += sh.ActivePairs()
	}
	return n
}

// RevocationStats sums §4.3.2 revocation counters across shards.
func (s *Sharded) RevocationStats() (signals, pairEvents int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		a, b := sh.RevocationStats()
		signals += a
		pairEvents += b
	}
	return signals, pairEvents
}

// WindowsClosed reports how many CloseWindow rounds have run.
func (s *Sharded) WindowsClosed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[0].WindowsClosed()
}

// MonitorStats reports monitor state across all shards. Per-pair monitors
// (AS-path, burst, community) are summed over the shards that own them;
// shared series (subpaths, borders, extras, IXP state) live in the single
// shared state, so any shard's view of them is the total.
func (s *Sharded) MonitorStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.shards[0].MonitorStats()
	if len(s.shards) == 1 {
		return st
	}
	st.ASPathMonitors, st.BurstMonitors, st.CommunityTargets = 0, 0, 0
	for _, sh := range s.shards {
		ss := sh.MonitorStats()
		st.ASPathMonitors += ss.ASPathMonitors
		st.BurstMonitors += ss.BurstMonitors
		st.CommunityTargets += ss.CommunityTargets
	}
	return st
}

// SetInitialIXPMembership seeds §4.2.3's membership snapshot in the shared
// state.
func (s *Sharded) SetInitialIXPMembership(members map[int][]bgp.ASN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards[0].SetInitialIXPMembership(members)
}

// AllowPrivatePeerSignals enables IXP signals through private peers of the
// AS (§4.2.3's learned exception).
func (s *Sharded) AllowPrivatePeerSignals(as bgp.ASN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards[0].AllowPrivatePeerSignals(as)
}

// RefreshPlan selects up to budget flagged pairs to remeasure (§4.3.1),
// planning over the union of every shard's active signals.
func (s *Sharded) RefreshPlan(budget int, rng *rand.Rand) []traceroute.Key {
	return planKeys(s.RefreshPlanDetailed(budget, rng))
}

// RefreshPlanDetailed is RefreshPlan returning each selection with its
// ranking attributes (see PlanItem).
func (s *Sharded) RefreshPlanDetailed(budget int, rng *rand.Rand) []PlanItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.shards) == 1 {
		return s.shards[0].RefreshPlanDetailed(budget, rng)
	}
	active := make(map[traceroute.Key][]Signal)
	regs := make(map[traceroute.Key][]Registration)
	for _, sh := range s.shards {
		for k, v := range sh.active {
			active[k] = v
		}
		for k, v := range sh.regs {
			regs[k] = v
		}
	}
	return refreshPlan(active, regs, s.Calib, budget, rng)
}
