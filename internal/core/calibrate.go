package core

import (
	"math/rand"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// Outcome is the result of evaluating one potential signal against a
// refresh measurement (§4.3.1).
type Outcome int

// Outcomes.
const (
	// OutcomeTP: the signal indicated a change and the portion changed.
	OutcomeTP Outcome = iota
	// OutcomeFP: the signal indicated a change but the portion is intact.
	OutcomeFP
	// OutcomeTN: no signal, and the portion is intact.
	OutcomeTN
	// OutcomeFN: no signal, but the portion changed.
	OutcomeFN
)

// calibKey identifies a (traceroute vantage point, potential signal) pair.
// The paper indexes tallies by the VP that issued the traceroute; we use
// the source address.
type calibKey struct {
	src     uint32
	monitor int
}

// tally keeps the last l outcomes per (VP, signal).
type tally struct {
	ring []Outcome
	next int
	full bool
}

func (t *tally) add(o Outcome, l int) {
	if len(t.ring) < l {
		t.ring = append(t.ring, o)
		if len(t.ring) == l {
			t.full = true
		}
		return
	}
	t.ring[t.next] = o
	t.next = (t.next + 1) % l
	t.full = true
}

func (t *tally) rates() (tpr, tnr float64, ok bool) {
	if !t.full {
		return 0, 0, false
	}
	var tp, fp, tn, fn int
	for _, o := range t.ring {
		switch o {
		case OutcomeTP:
			tp++
		case OutcomeFP:
			fp++
		case OutcomeTN:
			tn++
		case OutcomeFN:
			fn++
		}
	}
	if tp+fn > 0 {
		tpr = float64(tp) / float64(tp+fn)
	}
	if tn+fp > 0 {
		tnr = float64(tn) / float64(tn+fp)
	}
	return tpr, tnr, true
}

// Calibrator maintains §4.3.1's per-(VP, signal) TPR/TNR tallies and
// Appendix B's community reputation.
type Calibrator struct {
	l       int
	fpQuota int
	stats   map[calibKey]*tally

	commFP     map[bgp.Community]int
	commTP     map[bgp.Community]int
	commPruned map[bgp.Community]bool
}

// NewCalibrator returns a calibrator with sliding window length l and a
// community false-positive quota.
func NewCalibrator(l, fpQuota int) *Calibrator {
	return &Calibrator{
		l:          l,
		fpQuota:    fpQuota,
		stats:      make(map[calibKey]*tally),
		commFP:     make(map[bgp.Community]int),
		commTP:     make(map[bgp.Community]int),
		commPruned: make(map[bgp.Community]bool),
	}
}

// Record adds one outcome for (src VP, monitor).
func (c *Calibrator) Record(src uint32, monitor int, o Outcome) {
	k := calibKey{src: src, monitor: monitor}
	t := c.stats[k]
	if t == nil {
		t = &tally{}
		c.stats[k] = t
	}
	t.add(o, c.l)
}

// Rates returns (TPR, TNR) for a (VP, signal); ok is false while the
// sliding window is not yet full (uninitialized per §4.3.1).
func (c *Calibrator) Rates(src uint32, monitor int) (tpr, tnr float64, ok bool) {
	t := c.stats[calibKey{src: src, monitor: monitor}]
	if t == nil {
		return 0, 0, false
	}
	return t.rates()
}

// RecordCommunityOutcome feeds Appendix B's learning: communities whose
// signals keep failing are pruned.
func (c *Calibrator) RecordCommunityOutcome(comm bgp.Community, truePositive bool) {
	if truePositive {
		c.commTP[comm]++
		return
	}
	c.commFP[comm]++
	if c.commFP[comm] >= c.fpQuota && c.commTP[comm] == 0 {
		c.commPruned[comm] = true
	}
}

// CommunityPruned reports whether the community has been learned to be
// unrelated to path changes.
func (c *Calibrator) CommunityPruned(comm bgp.Community) bool {
	return c.commPruned[comm]
}

// PrunedCommunityCount reports how many communities calibration disabled
// (Fig 13's converging quantity).
func (c *Calibrator) PrunedCommunityCount() int { return len(c.commPruned) }

// PrunedCommunities lists the pruned community values in ascending order,
// so a cluster merge can de-duplicate prune decisions that independent
// workers reached about the same community.
func (c *Calibrator) PrunedCommunities() []bgp.Community {
	out := make([]bgp.Community, 0, len(c.commPruned))
	for comm := range c.commPruned {
		out = append(out, comm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- Refresh outcome evaluation ---

// portionChanged reports whether any of the old entry's border crossings at
// the given indices is missing from the new measurement's border path.
func portionChanged(old *corpus.Entry, borders []int, new *corpus.Entry) bool {
	if len(borders) == 0 {
		// Whole-path potential signal: any border-or-AS-level difference.
		return corpus.ClassifyEntry(old, new) != bordermap.Unchanged
	}
	// Align by AS pair: a crossing hidden by unresponsive hops in the new
	// measurement is a wildcard, not a change.
	newByPair := make(map[[2]bgp.ASN]map[string]bool, len(new.Borders))
	for _, b := range new.Borders {
		pair := [2]bgp.ASN{b.FromAS, b.ToAS}
		if newByPair[pair] == nil {
			newByPair[pair] = make(map[string]bool)
		}
		newByPair[pair][b.Key()] = true
	}
	for _, bi := range borders {
		if bi >= len(old.Borders) {
			continue
		}
		b := old.Borders[bi]
		keys, visible := newByPair[[2]bgp.ASN{b.FromAS, b.ToAS}]
		if !visible {
			continue
		}
		if !keys[b.Key()] {
			return true
		}
	}
	return false
}

// EvaluateRefresh scores every potential signal of the pair against a new
// measurement, updating the calibrator (including community reputations),
// and returns the change classification. It does not modify registrations;
// call Reregister afterwards to swap in the new measurement.
func (e *Engine) EvaluateRefresh(newEntry *corpus.Entry) (bordermap.ChangeClass, bool) {
	old, ok := e.entries[newEntry.Key]
	if !ok {
		return bordermap.Unchanged, false
	}
	signaled := make(map[int][]Signal)
	for _, s := range e.active[newEntry.Key] {
		signaled[s.MonitorID] = append(signaled[s.MonitorID], s)
	}
	for _, reg := range e.regs[newEntry.Key] {
		changed := portionChanged(old, reg.Borders, newEntry)
		sigs, wasSignaled := signaled[reg.MonitorID]
		var o Outcome
		switch {
		case wasSignaled && changed:
			o = OutcomeTP
		case wasSignaled && !changed:
			o = OutcomeFP
		case !wasSignaled && !changed:
			o = OutcomeTN
		default:
			o = OutcomeFN
		}
		e.Calib.Record(newEntry.Key.Src, reg.MonitorID, o)
		if reg.Technique == TechBGPCommunity && wasSignaled {
			for _, s := range sigs {
				if s.Comm != 0 {
					e.Calib.RecordCommunityOutcome(s.Comm, changed)
				}
			}
		}
	}
	return corpus.ClassifyEntry(old, newEntry), true
}

// Reregister replaces the pair's entry and monitors with a fresh
// measurement, clearing its active signals.
func (e *Engine) Reregister(newEntry *corpus.Entry) {
	e.RemovePair(newEntry.Key)
	e.AddCorpusEntry(newEntry)
}

// RemovePair unregisters a corpus pair from every technique.
func (e *Engine) RemovePair(k traceroute.Key) {
	delete(e.entries, k)
	delete(e.regs, k)
	delete(e.active, k)

	stash := make(map[string]*retiredState)
	for _, m := range e.aspByKey[k] {
		m.dead = true
		e.deadASP++
		stash["asp:"+m.suffix.String()] = &retiredState{
			det: m.det, baseline: m.baseline, hasBase: m.hasBase,
		}
	}
	delete(e.aspByKey, k)
	if e.deadASP > len(e.asp)/2 && len(e.asp) > 64 {
		alive := e.asp[:0]
		for _, m := range e.asp {
			if !m.dead {
				alive = append(alive, m)
			}
		}
		e.asp = alive
		e.deadASP = 0
	}

	aliveBursts := e.bursts[:0]
	for _, bm := range e.bursts {
		if bm.key != k {
			aliveBursts = append(aliveBursts, bm)
			continue
		}
		stash["burst:"+bm.suffix.String()] = &retiredState{det: bm.det}
	}
	e.bursts = aliveBursts
	if len(stash) > 0 {
		e.retired[k] = stash
	}

	if cm := e.comms[k]; cm != nil {
		cm.dead = true
	}
	delete(e.comms, k)

	for _, mon := range e.subByKey[k] {
		ws := mon.watchers[:0]
		for _, w := range mon.watchers {
			if w.key != k {
				ws = append(ws, w)
			}
		}
		mon.watchers = ws
	}
	delete(e.subByKey, k)

	for _, rs := range e.brsByKey[k] {
		ws := rs.watchers[:0]
		for _, w := range rs.watchers {
			if w.key != k {
				ws = append(ws, w)
			}
		}
		rs.watchers = ws
	}
	delete(e.brsByKey, k)

	if keys := e.destToKeys[k.Dst]; len(keys) > 0 {
		out := keys[:0]
		for _, kk := range keys {
			if kk != k {
				out = append(out, kk)
			}
		}
		e.destToKeys[k.Dst] = out
	}
}

// --- Refresh planning (§4.3.1) ---

// RefreshPlan selects which corpus pairs to refresh given the probing
// budget, implementing the five-step procedure of §4.3.1: pick the VP with
// the highest relative TPR, compute a per-VP refresh probability combining
// the TPR of firing signals and the TNR of silent potential signals, spend
// budget, then fall back to Table 1's bootstrap ordering for uncalibrated
// signals.
func (e *Engine) RefreshPlan(budget int, rng *rand.Rand) []traceroute.Key {
	return planKeys(refreshPlan(e.active, e.regs, e.Calib, budget, rng))
}

// RefreshPlanDetailed is RefreshPlan returning each selection with the
// attributes it was ranked by, so a cluster router can re-merge
// per-worker plans in global priority order.
func (e *Engine) RefreshPlanDetailed(budget int, rng *rand.Rand) []PlanItem {
	return refreshPlan(e.active, e.regs, e.Calib, budget, rng)
}

// PlanItem is one refresh-plan selection together with its ranking
// attributes (§4.3.1): whether the calibrated phase (steps 1-4) or the
// Table-1 bootstrap (step 5) picked it, the selecting VP's summed
// relative TPR for calibrated picks, and the pair's highest-priority
// active signal — the evidence a priority merge needs to interleave
// plans from disjoint state partitions.
type PlanItem struct {
	Key        traceroute.Key
	Calibrated bool
	VPTPR      float64
	Sig        Signal
}

func planKeys(items []PlanItem) []traceroute.Key {
	out := make([]traceroute.Key, len(items))
	for i, it := range items {
		out[i] = it.Key
	}
	return out
}

// bestSignal picks a pair's representative signal: its table1Less-first
// active signal, i.e. the one a global bootstrap scan would select it by.
func bestSignal(sigs []Signal) Signal {
	best := sigs[0]
	for _, s := range sigs[1:] {
		if table1Less(s, best) {
			best = s
		}
	}
	return best
}

// refreshPlan is RefreshPlanDetailed over explicit state, so a Sharded
// engine can merge per-shard active/registration maps and plan globally.
// Its outcome depends only on the map contents, not iteration order:
// every candidate list is sorted before budget is spent.
func refreshPlan(active map[traceroute.Key][]Signal, regs map[traceroute.Key][]Registration,
	calib *Calibrator, budget int, rng *rand.Rand) []PlanItem {
	type vpState struct {
		src     uint32
		sumTPR  float64
		keys    map[traceroute.Key]bool
		sigs    []Signal
		anyInit bool
	}
	bySrc := make(map[uint32]*vpState)
	for k, sigs := range active {
		if len(sigs) == 0 {
			continue
		}
		st := bySrc[k.Src]
		if st == nil {
			st = &vpState{src: k.Src, keys: make(map[traceroute.Key]bool)}
			bySrc[k.Src] = st
		}
		st.keys[k] = true
		st.sigs = append(st.sigs, sigs...)
		for _, s := range sigs {
			if tpr, _, ok := calib.Rates(k.Src, s.MonitorID); ok {
				st.sumTPR += tpr
				st.anyInit = true
			}
		}
	}

	var chosen []PlanItem
	chosenSet := make(map[traceroute.Key]bool)
	remaining := budget

	// Steps 1-4: calibrated VPs in order of relative TPR.
	var order []*vpState
	for _, st := range bySrc {
		if st.anyInit {
			order = append(order, st)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].sumTPR != order[j].sumTPR {
			return order[i].sumTPR > order[j].sumTPR
		}
		return order[i].src < order[j].src
	})
	for _, st := range order {
		if remaining <= 0 {
			break
		}
		// Refresh probability combines TPRs of firing signals with TNRs of
		// silent potential signals across the VP's flagged traceroutes.
		var sumTPR, sumTNR float64
		signaledMon := make(map[traceroute.Key]map[int]bool)
		for k := range st.keys {
			signaledMon[k] = make(map[int]bool)
		}
		for _, s := range st.sigs {
			if m, ok := signaledMon[s.Key]; ok {
				m[s.MonitorID] = true
			}
			if tpr, _, ok := calib.Rates(st.src, s.MonitorID); ok {
				sumTPR += tpr
			}
		}
		for k := range st.keys {
			for _, reg := range regs[k] {
				if signaledMon[k][reg.MonitorID] {
					continue
				}
				if _, tnr, ok := calib.Rates(st.src, reg.MonitorID); ok {
					sumTNR += tnr
				}
			}
		}
		p := 1.0
		if sumTPR+sumTNR > 0 {
			p = sumTPR / (sumTPR + sumTNR)
		}
		keys := sortedKeySet(st.keys)
		for _, k := range keys {
			if remaining <= 0 {
				break
			}
			if chosenSet[k] {
				continue
			}
			if rng.Float64() <= p {
				chosen = append(chosen, PlanItem{
					Key:        k,
					Calibrated: true,
					VPTPR:      st.sumTPR,
					Sig:        bestSignal(active[k]),
				})
				chosenSet[k] = true
				remaining--
			}
		}
	}

	// Step 5: bootstrap ordering over remaining signals (Table 1).
	if remaining > 0 {
		var rest []Signal
		for k, sigs := range active {
			if chosenSet[k] {
				continue
			}
			rest = append(rest, sigs...)
		}
		sort.Slice(rest, func(i, j int) bool { return table1Less(rest[i], rest[j]) })
		for _, s := range rest {
			if remaining <= 0 {
				break
			}
			if chosenSet[s.Key] {
				continue
			}
			// The sorted scan reaches each key first via its best signal,
			// so s is exactly the pair's representative.
			chosen = append(chosen, PlanItem{Key: s.Key, Sig: s})
			chosenSet[s.Key] = true
			remaining--
		}
	}
	return chosen
}

func sortedKeySet(m map[traceroute.Key]bool) []traceroute.Key {
	out := make([]traceroute.Key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// table1Less orders signals by the paper's Table 1 priority attributes:
// IP-level overlap, AS-level overlap, VP in same AS and city, same AS,
// same city, AS-level change kind, then border/IXP change; ties break on
// VP count for BGP signals and detector score for traceroute signals.
func table1Less(a, b Signal) bool {
	if a.IPOverlap != b.IPOverlap {
		return a.IPOverlap > b.IPOverlap
	}
	if a.ASOverlap != b.ASOverlap {
		return a.ASOverlap > b.ASOverlap
	}
	aBoth, bBoth := a.SameASVP && a.SameCityVP, b.SameASVP && b.SameCityVP
	if aBoth != bBoth {
		return aBoth
	}
	if a.SameASVP != b.SameASVP {
		return a.SameASVP
	}
	if a.SameCityVP != b.SameCityVP {
		return a.SameCityVP
	}
	aAS, bAS := a.Technique == TechBGPASPath, b.Technique == TechBGPASPath
	if aAS != bAS {
		return aAS
	}
	if a.Technique.IsBGP() != b.Technique.IsBGP() {
		// Tie-breaker domain: BGP signals by VP count, traceroute signals
		// by z-score; across domains prefer more VPs then higher score.
		if a.VPCount != b.VPCount {
			return a.VPCount > b.VPCount
		}
		return a.Score > b.Score
	}
	if a.Technique.IsBGP() {
		if a.VPCount != b.VPCount {
			return a.VPCount > b.VPCount
		}
	} else if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Key.Src != b.Key.Src {
		return a.Key.Src < b.Key.Src
	}
	return a.Key.Dst < b.Key.Dst
}
