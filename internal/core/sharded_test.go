package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// engineAPI is the surface shared by the serial Engine and the Sharded
// wrapper, so the same workload can drive both.
type engineAPI interface {
	ObserveBGP(bgp.Update)
	ObservePublicTrace(*traceroute.Traceroute)
	CloseWindow(int64) []Signal
	AddCorpusEntry(*corpus.Entry)
	Reregister(*corpus.Entry)
	EvaluateRefresh(*corpus.Entry) (bordermap.ChangeClass, bool)
	SetInitialIXPMembership(map[int][]bgp.ASN)
	SignalCounts() map[Technique]int
	RevocationStats() (int, int)
	RefreshPlan(int, *rand.Rand) []traceroute.Key
}

func mkTraceIPs(when int64, src, dst uint32, hops ...uint32) *traceroute.Traceroute {
	tr := &traceroute.Traceroute{Src: src, Dst: dst, Time: when, ProbeID: 1}
	for i, h := range hops {
		tr.Hops = append(tr.Hops, traceroute.Hop{TTL: i + 1, IP: h})
	}
	if n := len(hops); n > 0 && hops[n-1] == dst {
		tr.Reached = true
	}
	return tr
}

type workloadResult struct {
	windows [][]Signal
	counts  map[Technique]int
	revoked [2]int
	plan    []traceroute.Key
}

// runShardWorkload drives a multi-technique feed — AS-path changes, a
// community change, an update burst, diverging public subpaths, an IXP
// joiner, mid-run registrations, and refresh/reregister cycles — and
// records every window's signal stream.
func runShardWorkload(t *testing.T, e engineAPI) workloadResult {
	t.Helper()
	const w = int64(900)
	corp := corpus.New(testMapper{}, identityAliases)
	res := workloadResult{counts: map[Technique]int{}}

	e.SetInitialIXPMembership(map[int][]bgp.ASN{1: {3}})
	ixpIfaceMember[240<<24|77] = 9

	pfx4 := pfx(t, "4.0.0.0/8")
	// 12 VPs with routes to 4.0.0.0/8; vp index 1 carries a community
	// baseline so a later community change is judged against it, and the
	// last three traverse extra AS 8 so burst exculpation series exist.
	vpPath := func(v int) bgp.Path {
		if v >= 9 {
			return bgp.Path{bgp.ASN(50 + v), 8, 3, 4}
		}
		return bgp.Path{bgp.ASN(50 + v), 2, 3, 4}
	}
	announceVP := func(tm int64, v int, path bgp.Path, comms bgp.Communities) {
		e.ObserveBGP(bgp.Update{
			Time: tm, PeerIP: uint32(50+v)<<24 | 9, PeerAS: bgp.ASN(50 + v),
			Type: bgp.Announce, Prefix: pfx4, ASPath: path, Communities: comms,
		})
	}
	for v := 0; v < 12; v++ {
		var comms bgp.Communities
		if v == 1 {
			comms = bgp.Communities{bgp.MakeCommunity(3, 100)}
		}
		announceVP(0, v, vpPath(v), comms)
	}

	// Corpus pairs share the 2.0.0.1 → 3.0.0.1 → 4.0.0.2 backbone (shared
	// subpath and border monitors) and spread over src/dst so they hash
	// across shards.
	addEntry := func(tm int64, srcNet, i uint32) *corpus.Entry {
		t.Helper()
		tr := mkTraceIPs(tm,
			srcNet<<24|i, 4<<24|(srcNet*100)+i,
			srcNet<<24|(i+50), 2<<24|1, 3<<24|1, 4<<24|2, 4<<24|(srcNet*100)+i)
		en, err := corp.Process(tr)
		if err != nil {
			t.Fatal(err)
		}
		e.AddCorpusEntry(en)
		return en
	}
	var entries []*corpus.Entry
	for i := uint32(1); i <= 24; i++ {
		entries = append(entries, addEntry(0, 1, i))
	}

	closeW := func(ws int64) {
		res.windows = append(res.windows, e.CloseWindow(ws))
	}
	// steadyPub confirms the shared subpath from a public vantage; the
	// AS4 backbone hop anchors the series beyond the border that shifts.
	steadyPub := func(tm int64) {
		e.ObservePublicTrace(mkTraceIPs(tm,
			9<<24|1, 4<<24|8, 9<<24|2, 2<<24|1, 3<<24|1, 4<<24|2, 4<<24|8))
	}

	// Warm-up: 60 windows establish AS-path baselines, and a public trace
	// per window builds the shared subpath and border series histories.
	end := int64(0)
	for i := 0; i < 60; i++ {
		steadyPub(end + 5)
		closeW(end)
		end += w
	}

	// Mid-run registrations join shared monitors warmed above; replicas on
	// every shard must be equally warm for the streams to match.
	for i := uint32(1); i <= 8; i++ {
		entries = append(entries, addEntry(end, 7, i))
	}
	entries[0].MeasuredAt = end
	e.Reregister(entries[0])

	// Window A: one VP shifts its path (AS-path signals).
	announceVP(end+5, 0, bgp.Path{50, 2, 9, 4}, nil)
	steadyPub(end + 20)
	closeW(end)
	end += w

	// Window B: the VP reverts; after the ratio settles the engine revokes
	// the window-A signals (§4.3.2).
	announceVP(end+5, 0, vpPath(0), nil)
	steadyPub(end + 20)
	closeW(end)
	end += w
	steadyPub(end + 5)
	closeW(end)
	end += w

	// Window C: the community-carrying VP adds an AS3 community.
	announceVP(end+5, 1, vpPath(1),
		bgp.Communities{bgp.MakeCommunity(3, 100), bgp.MakeCommunity(3, 51000)})
	steadyPub(end + 20)
	closeW(end)
	end += w

	// Window D: an unexplained duplicate-update burst across the VP set
	// (the extra-AS witnesses at vp index ≥9 stay quiet). VP 1 re-announces
	// its exact communities — stripping them would read as a community
	// change and suppress the burst as an echo.
	for rep := 0; rep < 3; rep++ {
		for v := 0; v < 9; v++ {
			var comms bgp.Communities
			if v == 1 {
				comms = bgp.Communities{bgp.MakeCommunity(3, 100), bgp.MakeCommunity(3, 51000)}
			}
			announceVP(end+int64(rep*12+v)+1, v, vpPath(v), comms)
		}
	}
	steadyPub(end + 200)
	closeW(end)
	end += w

	// Windows E..H: public traces diverge from the shared subpath at the
	// AS3 ingress (subpath + border-router signals), and an IXP joiner
	// appears next to a known member's interface.
	for i := 0; i < 4; i++ {
		e.ObservePublicTrace(mkTraceIPs(end+5,
			9<<24|1, 4<<24|8, 9<<24|2, 2<<24|1, 3<<24|9, 4<<24|2, 4<<24|8))
		if i == 0 {
			e.ObservePublicTrace(mkTraceIPs(end+50,
				1<<24|5, 9<<24|8, 1<<24|6, 240<<24|77, 9<<24|8))
		}
		closeW(end)
		end += w
	}

	// Settle, then refresh a changed pair and re-register it (calibration
	// outcome recording plus monitor teardown/rebuild).
	for i := 0; i < 3; i++ {
		steadyPub(end + 5)
		closeW(end)
		end += w
	}
	for _, en := range entries[:4] {
		fresh := mkTraceIPs(end, en.Key.Src, en.Key.Dst,
			en.Key.Src+50, 2<<24|1, 3<<24|1, 4<<24|2, en.Key.Dst)
		fen, err := corp.Process(fresh)
		if err != nil {
			t.Fatal(err)
		}
		e.EvaluateRefresh(fen)
		e.Reregister(fen)
	}
	for i := 0; i < 3; i++ {
		closeW(end)
		end += w
	}

	res.plan = e.RefreshPlan(8, rand.New(rand.NewSource(42)))
	res.counts = e.SignalCounts()
	res.revoked[0], res.revoked[1] = e.RevocationStats()
	return res
}

// workloadGeo places the shared backbone hops in cities so the workload's
// border crossings are monitorable; workloadRel makes AS2 the joiner's
// provider so the IXP scenario signals.
func workloadGeo() mapGeo {
	return mapGeo{2<<24 | 1: 1, 3<<24 | 1: 2, 3<<24 | 9: 2, 4<<24 | 2: 3, 9<<24 | 2: 4}
}

func workloadRel() mapRel {
	return mapRel{[2]bgp.ASN{1, 2}: RelCustomerOf}
}

// TestShardedMatchesSerial locks in the tentpole guarantee: for the same
// feed, the sharded engine's signal stream is byte-identical to the serial
// engine's, at any shard count.
func TestShardedMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0

	serial := runShardWorkload(t, NewEngine(cfg, testMapper{}, identityAliases, workloadGeo(), workloadRel()))

	// The equivalence check is only meaningful if the workload makes every
	// technique fire.
	for tech, n := range serial.counts {
		if n == 0 {
			t.Errorf("workload produced no %v signals; equivalence check is weak", tech)
		}
	}
	if serial.revoked[0] == 0 {
		t.Error("workload produced no revocations")
	}

	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			scfg := cfg
			scfg.Shards = shards
			got := runShardWorkload(t, NewSharded(scfg, testMapper{}, identityAliases, workloadGeo(), workloadRel()))
			if len(got.windows) != len(serial.windows) {
				t.Fatalf("window count = %d, want %d", len(got.windows), len(serial.windows))
			}
			for i := range serial.windows {
				if !reflect.DeepEqual(got.windows[i], serial.windows[i]) {
					t.Fatalf("window %d diverges:\n sharded: %v\n serial:  %v",
						i, got.windows[i], serial.windows[i])
				}
			}
			if !reflect.DeepEqual(got.counts, serial.counts) {
				t.Errorf("signal counts = %v, want %v", got.counts, serial.counts)
			}
			if got.revoked != serial.revoked {
				t.Errorf("revocation stats = %v, want %v", got.revoked, serial.revoked)
			}
			if !reflect.DeepEqual(got.plan, serial.plan) {
				t.Errorf("refresh plan = %v, want %v", got.plan, serial.plan)
			}
		})
	}
}

// TestShardedQueryFanout checks that the pair-scoped and aggregate query
// surface of Sharded matches the serial engine after the same feed.
func TestShardedQueryFanout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0
	cfg.Shards = 3
	s := NewSharded(cfg, testMapper{}, identityAliases, mapGeo{}, mapRel{})
	corp := corpus.New(testMapper{}, identityAliases)

	for v := 0; v < 12; v++ {
		s.ObserveBGP(bgp.Update{
			Time: 0, PeerIP: uint32(50+v)<<24 | 9, PeerAS: bgp.ASN(50 + v),
			Type: bgp.Announce, Prefix: pfx(t, "4.0.0.0/8"),
			ASPath: bgp.Path{bgp.ASN(50 + v), 2, 3, 4},
		})
	}
	var keys []traceroute.Key
	for i := uint32(1); i <= 12; i++ {
		tr := mkTraceIPs(0, 1<<24|i, 4<<24|100+i,
			1<<24|(i+50), 2<<24|1, 3<<24|1, 4<<24|2, 4<<24|100+i)
		en, err := corp.Process(tr)
		if err != nil {
			t.Fatal(err)
		}
		s.AddCorpusEntry(en)
		keys = append(keys, en.Key)
	}
	for _, k := range keys {
		if _, ok := s.Entry(k); !ok {
			t.Fatalf("Entry(%v) missing", k)
		}
		if len(s.Registrations(k)) == 0 {
			t.Fatalf("Registrations(%v) empty", k)
		}
	}
	st := s.MonitorStats()
	if st.ASPathMonitors == 0 || st.SubpathMonitors == 0 {
		t.Fatalf("stats missing monitors: %+v", st)
	}
	// Per-pair monitors live on exactly one shard each; stats must count
	// each pair once, not per shard.
	if st.ASPathMonitors > 12*12 {
		t.Fatalf("ASPathMonitors double-counted: %d", st.ASPathMonitors)
	}

	s.ObserveBGP(bgp.Update{
		Time: 41*900 + 5, PeerIP: 50<<24 | 9, PeerAS: 50,
		Type: bgp.Announce, Prefix: pfx(t, "4.0.0.0/8"), ASPath: bgp.Path{50, 2, 9, 4},
	})
	// CloseWindow drains pending observations before closing.
	for i := 0; i < 45; i++ {
		s.CloseWindow(int64(i) * 900)
	}
	flagged := 0
	for _, k := range keys {
		if len(s.Active(k)) > 0 {
			flagged++
			s.ClearActive(k)
			if len(s.Active(k)) != 0 {
				t.Fatalf("ClearActive(%v) left signals", k)
			}
		}
	}
	if s.WindowsClosed() != 45 {
		t.Fatalf("WindowsClosed = %d, want 45", s.WindowsClosed())
	}
	s.RemovePair(keys[0])
	if _, ok := s.Entry(keys[0]); ok {
		t.Fatal("RemovePair left entry registered")
	}
}

// TestRestoreActive checks snapshot restore: injected signals land on the
// right shard and are served (and clearable) per key.
func TestRestoreActive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 3
	s := NewSharded(cfg, testMapper{}, identityAliases, mapGeo{}, mapRel{})

	var sigs []Signal
	var keys []traceroute.Key
	for i := uint32(1); i <= 9; i++ {
		k := traceroute.Key{Src: 1<<24 | i, Dst: 4<<24 | i}
		keys = append(keys, k)
		sigs = append(sigs,
			Signal{Technique: TechBGPASPath, Key: k, WindowStart: 900, MonitorID: int(i)},
			Signal{Technique: TechBGPBurst, Key: k, WindowStart: 1800, MonitorID: int(i)})
	}
	s.RestoreActive(sigs)
	for _, k := range keys {
		act := s.Active(k)
		if len(act) != 2 {
			t.Fatalf("Active(%v) = %d signals, want 2", k, len(act))
		}
		for _, sg := range act {
			if sg.Key != k {
				t.Fatalf("signal for %v routed to %v's shard", sg.Key, k)
			}
		}
	}
	s.ClearActive(keys[0])
	if len(s.Active(keys[0])) != 0 {
		t.Fatal("ClearActive left restored signals")
	}
	if len(s.Active(keys[1])) != 2 {
		t.Fatal("ClearActive bled into another key")
	}
}

// TestCommunityFPQuotaDefaultUnified is the regression test for the config
// mismatch where DefaultConfig set CommunityFPQuota=1 but a zero-valued
// Config fell back to a different quota inside NewEngine.
func TestCommunityFPQuotaDefaultUnified(t *testing.T) {
	e := NewEngine(Config{WindowSec: 900}, testMapper{}, identityAliases, nil, nil)
	s := NewSharded(Config{WindowSec: 900}, testMapper{}, identityAliases, nil, nil)
	want := DefaultConfig().CommunityFPQuota
	if got := e.Calib.fpQuota; got != want {
		t.Errorf("NewEngine zero-config quota = %d, want DefaultConfig's %d", got, want)
	}
	if got := s.Calib.fpQuota; got != want {
		t.Errorf("NewSharded zero-config quota = %d, want DefaultConfig's %d", got, want)
	}
}
