package core

import (
	"strconv"

	"rrr/internal/obs"
)

// Per-shard instrumentation for the sharded engine. Handles are resolved
// once in NewSharded (one labeled series per shard index), so the drain
// and close paths only touch atomics. Shard-labeled series accumulate
// across engine instances sharing a process — in the daemon there is
// exactly one — and expose imbalance: a hot shard shows a fatter
// close-window latency distribution and a larger owned-pairs gauge than
// its peers, since broadcast observation counts are identical by design.
type shardMetrics struct {
	obs   []*obs.Counter   // observations replayed into the shard
	pairs []*obs.Gauge     // corpus pairs owned by the shard
	close []*obs.Histogram // per-shard replay+close latency
}

func newShardMetrics(n int) shardMetrics {
	obs.Default.Help("rrr_shard_observations_total", "broadcast observations (BGP changes and prepared traceroutes) replayed into each shard")
	obs.Default.Help("rrr_shard_pairs", "corpus pairs owned by each shard (imbalance indicator)")
	obs.Default.Help("rrr_shard_close_window_seconds", "per-shard drain+close latency for one signal window")
	m := shardMetrics{
		obs:   make([]*obs.Counter, n),
		pairs: make([]*obs.Gauge, n),
		close: make([]*obs.Histogram, n),
	}
	for i := 0; i < n; i++ {
		shard := strconv.Itoa(i)
		m.obs[i] = obs.Default.Counter("rrr_shard_observations_total", "shard", shard)
		m.pairs[i] = obs.Default.Gauge("rrr_shard_pairs", "shard", shard)
		m.close[i] = obs.Default.Histogram("rrr_shard_close_window_seconds", nil, "shard", shard)
	}
	return m
}
