package core

import (
	"strconv"

	"rrr/internal/obs"
)

// Per-shard instrumentation for the sharded engine. Handles are resolved
// once in NewSharded (one labeled series per shard index), so the ingest
// and close paths only touch atomics. Shard-labeled series accumulate
// across engine instances sharing a process — in the daemon there is
// exactly one — and expose imbalance: a hot shard shows a fatter
// close-window latency distribution and a larger owned-pairs gauge than
// its peers. Observations are folded into the shared window state exactly
// once regardless of shard count, so they are a single engine-level
// counter rather than a per-shard series.
type shardMetrics struct {
	obs   *obs.Counter     // observations folded into the shared state
	pairs []*obs.Gauge     // corpus pairs owned by the shard
	close []*obs.Histogram // per-shard close latency
}

func newShardMetrics(n int) shardMetrics {
	obs.Default.Help("rrr_engine_observations_total", "observations (BGP changes and prepared traceroutes) folded into the engine's shared window state")
	obs.Default.Help("rrr_shard_pairs", "corpus pairs owned by each shard (imbalance indicator)")
	obs.Default.Help("rrr_shard_close_window_seconds", "per-shard close latency for one signal window")
	m := shardMetrics{
		obs:   obs.Default.Counter("rrr_engine_observations_total"),
		pairs: make([]*obs.Gauge, n),
		close: make([]*obs.Histogram, n),
	}
	for i := 0; i < n; i++ {
		shard := strconv.Itoa(i)
		m.pairs[i] = obs.Default.Gauge("rrr_shard_pairs", "shard", shard)
		m.close[i] = obs.Default.Histogram("rrr_shard_close_window_seconds", nil, "shard", shard)
	}
	return m
}
