package core

import (
	"fmt"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// sharedState is the engine state that is logically global to one feed:
// the per-window BGP observation fold and every monitor series shared
// across corpus pairs (extra-AS series, subpath monitors, border-router
// series, IXP membership). A serial Engine owns a private instance; the
// shards of a Sharded engine all point at one instance, so each update and
// traceroute is folded in exactly once instead of being replayed N times —
// the replication that made the sharded engine slower than serial.
//
// Concurrency contract: all writes happen on the dispatcher goroutine
// (under Sharded.mu). During the parallel phase of CloseWindow the shards
// only read this state (winUpdates lookups, extra-series outlierWin,
// series First/Last), which is safe because the shared close phase
// finishes before the per-shard workers start.
type sharedState struct {
	cfg Config
	geo Geolocator

	// Per-window BGP state, folded once per classified RIB change.
	winUpdates map[vpPrefix]*vpWindowState
	winComms   []commEvent
	// freeStates recycles vpWindowState objects across windows so the
	// steady-state fold allocates nothing.
	freeStates []*vpWindowState

	// §4.1.4 extra-AS exculpation series.
	extras       map[extraKey]*extraSeries
	extrasSorted []*extraSeries // cache of deterministic order; nil = dirty

	// §4.2.1 subpath monitors.
	subpaths   map[string]*subpathMonitor
	subByStart map[uint32][]*subpathMonitor
	subSorted  []*subpathMonitor // cache of key-sorted order; nil = dirty

	// §4.2.2 border-router series.
	borders      map[borderGroupKey]*borderGroup
	borderSorted []*borderRouterSeries // cache of (group, router) order; nil = dirty

	// §4.2.3 IXP membership state.
	ixpMembers  map[int]map[bgp.ASN]bool
	ixpObserved map[int]map[bgp.ASN]bool
	allowPriv   map[bgp.ASN]bool
}

func newSharedState(cfg Config, geo Geolocator) *sharedState {
	return &sharedState{
		cfg:         cfg,
		geo:         geo,
		winUpdates:  make(map[vpPrefix]*vpWindowState),
		extras:      make(map[extraKey]*extraSeries),
		subpaths:    make(map[string]*subpathMonitor),
		subByStart:  make(map[uint32][]*subpathMonitor),
		borders:     make(map[borderGroupKey]*borderGroup),
		ixpMembers:  make(map[int]map[bgp.ASN]bool),
		ixpObserved: make(map[int]map[bgp.ASN]bool),
		allowPriv:   make(map[bgp.ASN]bool),
	}
}

// observeBGPChange folds one already-applied RIB change into the window
// state. It never touches the RIB, so the dispatcher applies each update
// once and folds it once, regardless of shard count.
func (sh *sharedState) observeBGPChange(u bgp.Update, c bgp.Change) {
	key := vpPrefix{vp: c.VP, pf: u.Prefix}
	st := sh.winUpdates[key]
	if st == nil {
		if n := len(sh.freeStates); n > 0 {
			st = sh.freeStates[n-1]
			sh.freeStates[n-1] = nil
			sh.freeStates = sh.freeStates[:n-1]
		} else {
			st = &vpWindowState{}
		}
		if c.Prev != nil {
			st.startPath = c.Prev.ASPath
			st.startComms = c.Prev.Communities
			st.startOK = true
		}
		sh.winUpdates[key] = st
	}
	switch c.Kind {
	case bgp.ChangeWithdrawn:
		// A withdrawal removes the path; contributes no path update.
	case bgp.ChangeDuplicate:
		st.dup = true
		st.paths = append(st.paths, c.Cur.ASPath)
	case bgp.ChangeCommunities:
		st.paths = append(st.paths, c.Cur.ASPath)
		prev := bgp.Communities(nil)
		if c.Prev != nil {
			prev = c.Prev.Communities
		}
		sh.winComms = append(sh.winComms, commEvent{
			vp: c.VP, prefix: u.Prefix, prev: prev,
			cur: c.Cur.Communities, time: u.Time,
		})
	case bgp.ChangeASPath, bgp.ChangeNew:
		st.paths = append(st.paths, c.Cur.ASPath)
	}
}

// resetWindow clears the per-window fold, recycling the state objects (and
// their path slices) for the next window.
func (sh *sharedState) resetWindow() {
	for _, st := range sh.winUpdates {
		st.startPath, st.startComms = nil, nil
		st.startOK, st.dup = false, false
		for i := range st.paths {
			st.paths[i] = nil
		}
		st.paths = st.paths[:0]
		sh.freeStates = append(sh.freeStates, st)
	}
	clear(sh.winUpdates)
	for i := range sh.winComms {
		sh.winComms[i] = commEvent{}
	}
	sh.winComms = sh.winComms[:0]
}

// sortedExtras returns the extra-AS series in deterministic order. The
// order only changes at registration time, so it is cached instead of
// being rebuilt (keys collected, sorted, mapped) every window.
func (sh *sharedState) sortedExtras() []*extraSeries {
	if sh.extrasSorted == nil && len(sh.extras) > 0 {
		keys := make([]extraKey, 0, len(sh.extras))
		for k := range sh.extras {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].dstIP != keys[j].dstIP {
				return keys[i].dstIP < keys[j].dstIP
			}
			if keys[i].ak != keys[j].ak {
				return keys[i].ak < keys[j].ak
			}
			return keys[i].j < keys[j].j
		})
		out := make([]*extraSeries, len(keys))
		for i, k := range keys {
			out[i] = sh.extras[k]
		}
		sh.extrasSorted = out
	}
	return sh.extrasSorted
}

// sortedSubpaths returns the subpath monitors in key order, cached across
// windows like sortedExtras.
func (sh *sharedState) sortedSubpaths() []*subpathMonitor {
	if sh.subSorted == nil && len(sh.subpaths) > 0 {
		keys := sortedSubpathKeys(sh.subpaths)
		out := make([]*subpathMonitor, len(keys))
		for i, k := range keys {
			out[i] = sh.subpaths[k]
		}
		sh.subSorted = out
	}
	return sh.subSorted
}

// sortedBorderSeries returns every border-router series in (group key,
// router id) order, cached across windows.
func (sh *sharedState) sortedBorderSeries() []*borderRouterSeries {
	if sh.borderSorted == nil && len(sh.borders) > 0 {
		var out []*borderRouterSeries
		for _, gk := range sortedGroupKeys(sh.borders) {
			grp := sh.borders[gk]
			for _, rid := range sortedRouterIDs(grp.routers) {
				out = append(out, grp.routers[rid])
			}
		}
		sh.borderSorted = out
	}
	return sh.borderSorted
}

// sharedClose carries the results of the once-per-window shared close
// phase into the per-shard close phase.
type sharedClose struct {
	// commChanged marks prefixes with community changes this window (used
	// by burst echo suppression).
	commChanged map[trie.Prefix]bool
	// traceSigs are the window's subpath and border signals in the serial
	// engine's emission order; the sharded engine routes each to the shard
	// owning its pair before the parallel phase.
	traceSigs []Signal
}

// closeShared runs the once-per-window evaluation of all shared series:
// extra-AS detectors (consulted read-only by burst monitors afterwards)
// and the subpath and border-router series advances. It mutates shared
// detector state exactly once per window — the serial engine's semantics —
// and must complete before any per-shard close work starts.
func (sh *sharedState) closeShared(ws, end int64) *sharedClose {
	sc := &sharedClose{commChanged: make(map[trie.Prefix]bool, len(sh.winComms))}
	for _, ev := range sh.winComms {
		sc.commChanged[ev.prefix] = true
	}

	// Extra series first: burst correlation consults their outcome.
	for _, es := range sh.sortedExtras() {
		dups := 0
		for i := range es.slots {
			if st, ok := sh.winUpdates[es.slots[i].pf]; ok && st.dup {
				dups++
			}
		}
		if es.det.Add(float64(dups)) {
			es.outlierWin = ws
		}
	}

	// §4.2.1 subpath series.
	for _, mon := range sh.sortedSubpaths() {
		if mon.series == nil {
			continue
		}
		for _, o := range mon.series.AdvanceTo(end) {
			for _, w := range mon.watchers {
				sc.traceSigs = append(sc.traceSigs, Signal{
					Technique:   TechTraceSubpath,
					Key:         w.key,
					MonitorID:   mon.id,
					WindowStart: o.WindowStart,
					Borders:     w.borders,
					Detail:      fmt.Sprintf("subpath %s ratio %.2f", trie.FormatIP(mon.ips[0]), o.Value),
					Score:       o.Score,
					IPOverlap:   len(mon.ips),
				})
			}
		}
	}

	// §4.2.2 border-router series.
	for _, rs := range sh.sortedBorderSeries() {
		if rs.series == nil {
			continue
		}
		for _, o := range rs.series.AdvanceTo(end) {
			for _, w := range rs.watchers {
				sc.traceSigs = append(sc.traceSigs, Signal{
					Technique:   TechTraceBorder,
					Key:         w.key,
					MonitorID:   rs.id,
					WindowStart: o.WindowStart,
					Borders:     w.borders,
					Detail:      fmt.Sprintf("border %s->%s router shift", rs.gk.FromAS, rs.gk.ToAS),
					Score:       o.Score,
				})
			}
		}
	}
	return sc
}

// borderGroupOf geolocates a crossing's endpoints into the group key and
// resolves the border router identity. Same-city crossings are excluded
// (§4.2.2 requires c_m ≠ c_n).
func (sh *sharedState) borderGroupOf(b bordermap.BorderHop, when int64) (borderGroupKey, int, bool) {
	cm, ok := sh.geo.LocateCity(b.NearIP, when)
	if !ok {
		return borderGroupKey{}, 0, false
	}
	cn, ok := sh.geo.LocateCity(b.FarIP, when)
	if !ok || cm == cn {
		return borderGroupKey{}, 0, false
	}
	router := b.Router
	if router == 0 {
		router = -int(b.FarIP)
	}
	return borderGroupKey{FromAS: b.FromAS, FromC: cm, ToAS: b.ToAS, ToC: cn}, router, true
}

// observeTrace folds one prepared public traceroute into the shared
// series: subpath observations, border-router observations, and §4.2.3
// new-IXP-member detection. Detected joins are reported through onJoin
// one at a time, interleaved with the membership mutation exactly as the
// serial engine interleaved them (a second join on the same traceroute
// must see the first one already recorded). The caller turns each join
// into per-pair signals by scanning its own corpus slice.
func (sh *sharedState) observeTrace(pt *preparedTrace, onJoin func(ixp int, member bgp.ASN, when int64)) {
	path := pt.path

	// §4.2.1: subpath observations.
	for i, ip := range path {
		if ip == 0 {
			continue
		}
		for _, mon := range sh.subByStart[ip] {
			// Intersect: the trace passes ι_m then later ι_n.
			_, endIdx, via := traceroute.TraversesVia(path[i:], ip, mon.last)
			if !via {
				continue
			}
			// Match: the anchors appear in order. Anchors are border
			// interfaces; intra-domain hops between them may differ
			// across flows and over time without indicating a border
			// change (§4.2's interdomain-only rule). A failed match that
			// could be explained by an unresponsive hop in the span is
			// unknown — wildcards cannot indicate a change (Appendix A) —
			// and is dropped.
			match := matchesSparse(path[i:], mon.ips)
			if !match && spanHasHole(path[i:], endIdx) {
				continue
			}
			if DebugSubpath != nil && !match {
				DebugSubpath(mon.ips, path, match)
			}
			if mon.series != nil {
				mon.series.Observe(pt.time, boolVal(match))
			} else {
				mon.buf = append(mon.buf, subObs{t: pt.time, match: match})
				mon.activate(sh.cfg.PublicLadder, pt.time)
			}
		}
	}

	// §4.2.2 consumes the border path.
	if sh.geo != nil {
		for _, b := range pt.borders {
			// An unresponsive hop between near and far may hide the true
			// ingress router: the crossing is a wildcard, not evidence.
			if b.FarIdx != b.NearIdx+1 {
				continue
			}
			gk, router, ok := sh.borderGroupOf(b, pt.time)
			if !ok {
				continue
			}
			grp := sh.borders[gk]
			if grp == nil {
				continue
			}
			for _, rs := range grp.routers {
				if rs.series != nil {
					rs.series.Observe(pt.time, boolVal(rs.router == router))
					continue
				}
				rs.buf = append(rs.buf, subObs{t: pt.time, match: rs.router == router})
				rs.activate(sh.cfg.PublicLadder, pt.time)
			}
		}
	}

	// §4.2.3: watch for ASes newly appearing as near-end neighbors of IXP
	// interfaces.
	if sh.cfg.disabled(TechIXPMembership) {
		return
	}
	for _, b := range pt.borders {
		if b.IXP == 0 {
			continue
		}
		// Near-end (left-adjacent) neighbor of the IXP interface.
		member := b.FromAS
		known := sh.ixpMembers[b.IXP]
		if known == nil {
			known = make(map[bgp.ASN]bool)
			sh.ixpMembers[b.IXP] = known
		}
		obs := sh.ixpObserved[b.IXP]
		if obs == nil {
			obs = make(map[bgp.ASN]bool)
			sh.ixpObserved[b.IXP] = obs
		}
		if known[member] || obs[member] {
			continue
		}
		obs[member] = true
		// During bootstrap, observed members augment the snapshot without
		// signaling (the paper builds its initial membership from
		// PeeringDB plus traceroute-observed adjacencies).
		if pt.time < sh.cfg.IXPBootstrapSec {
			continue
		}
		onJoin(b.IXP, member, pt.time)
	}
}

// mergeSortedSignals merges per-shard signal slices, each already in
// signalLess order, into one totally-ordered stream. Replaces the old
// concatenate-and-resort, which redid O(n log n) comparison work the
// shards had already paid for.
func mergeSortedSignals(parts [][]Signal) []Signal {
	total, nonEmpty, last := 0, 0, 0
	for i := range parts {
		if len(parts[i]) > 0 {
			total += len(parts[i])
			nonEmpty++
			last = i
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return parts[last]
	}
	out := make([]Signal, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i := range parts {
			if idx[i] >= len(parts[i]) {
				continue
			}
			if best < 0 || signalLess(parts[i][idx[i]], parts[best][idx[best]]) {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}
