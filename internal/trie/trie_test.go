package trie

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) Prefix {
	t.Helper()
	p, err := ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	ip, err := ParseIP(s)
	if err != nil {
		t.Fatalf("ParseIP(%q): %v", s, err)
	}
	return ip
}

func TestParseFormatRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "203.0.113.7/32", "100.64.0.0/10"}
	for _, s := range cases {
		p := mustPrefix(t, s)
		if p.String() != s {
			t.Errorf("round trip %q got %q", s, p.String())
		}
	}
}

func TestParsePrefixCanonicalizes(t *testing.T) {
	p := mustPrefix(t, "10.1.2.3/8")
	if p.String() != "10.0.0.0/8" {
		t.Errorf("want canonical 10.0.0.0/8, got %s", p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "10.0.0.0", "10.0.0.0/33", "256.0.0.0/8", "a.b.c.d/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q): want error", s)
		}
	}
	for _, s := range []string{"", "10.0.0", "256.1.1.1", "1.2.3.4.5"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q): want error", s)
		}
	}
}

func TestContains(t *testing.T) {
	p := mustPrefix(t, "192.0.2.0/24")
	if !p.Contains(mustIP(t, "192.0.2.200")) {
		t.Error("192.0.2.0/24 should contain 192.0.2.200")
	}
	if p.Contains(mustIP(t, "192.0.3.1")) {
		t.Error("192.0.2.0/24 should not contain 192.0.3.1")
	}
}

func TestContainsPrefix(t *testing.T) {
	p8 := mustPrefix(t, "10.0.0.0/8")
	p24 := mustPrefix(t, "10.1.1.0/24")
	if !p8.ContainsPrefix(p24) {
		t.Error("/8 should contain /24 within it")
	}
	if p24.ContainsPrefix(p8) {
		t.Error("/24 should not contain its covering /8")
	}
	if !p8.ContainsPrefix(p8) {
		t.Error("prefix should contain itself")
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "0.0.0.0/0"), 1)
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 2)
	tr.Insert(mustPrefix(t, "10.1.0.0/16"), 3)
	tr.Insert(mustPrefix(t, "10.1.2.0/24"), 4)

	cases := []struct {
		ip   string
		want int
	}{
		{"10.1.2.3", 4},
		{"10.1.9.9", 3},
		{"10.9.9.9", 2},
		{"8.8.8.8", 1},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(mustIP(t, c.ip))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %d,%v; want %d", c.ip, got, ok, c.want)
		}
	}
}

func TestLookupMissEmptyTrie(t *testing.T) {
	var tr Trie[string]
	if _, ok := tr.Lookup(mustIP(t, "1.2.3.4")); ok {
		t.Error("lookup on empty trie should miss")
	}
}

func TestLookupMissNoDefault(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	if _, ok := tr.Lookup(mustIP(t, "11.0.0.1")); ok {
		t.Error("lookup outside only prefix should miss")
	}
}

func TestLookupPrefix(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	tr.Insert(mustPrefix(t, "10.1.0.0/16"), 2)
	p, v, ok := tr.LookupPrefix(mustIP(t, "10.1.200.1"))
	if !ok || v != 2 || p.String() != "10.1.0.0/16" {
		t.Errorf("LookupPrefix = %s,%d,%v; want 10.1.0.0/16,2,true", p, v, ok)
	}
}

func TestInsertReplace(t *testing.T) {
	var tr Trie[int]
	p := mustPrefix(t, "10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d; want 1", tr.Len())
	}
	if v, _ := tr.Get(p); v != 2 {
		t.Errorf("Get = %d; want 2", v)
	}
}

func TestDelete(t *testing.T) {
	var tr Trie[int]
	p8 := mustPrefix(t, "10.0.0.0/8")
	p16 := mustPrefix(t, "10.1.0.0/16")
	tr.Insert(p8, 1)
	tr.Insert(p16, 2)
	if !tr.Delete(p16) {
		t.Fatal("Delete existing should return true")
	}
	if tr.Delete(p16) {
		t.Fatal("double Delete should return false")
	}
	if v, ok := tr.Lookup(mustIP(t, "10.1.2.3")); !ok || v != 1 {
		t.Errorf("after delete, Lookup = %d,%v; want 1,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d; want 1", tr.Len())
	}
}

func TestDeleteAbsent(t *testing.T) {
	var tr Trie[int]
	if tr.Delete(mustPrefix(t, "10.0.0.0/8")) {
		t.Error("Delete on empty trie should be false")
	}
}

func TestZeroLengthPrefixDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(Prefix{}, "default")
	v, ok := tr.Lookup(0xffffffff)
	if !ok || v != "default" {
		t.Errorf("default route lookup = %q,%v", v, ok)
	}
}

func TestHostRoute(t *testing.T) {
	var tr Trie[int]
	ip := mustIP(t, "203.0.113.5")
	tr.Insert(MakePrefix(ip, 32), 7)
	if v, ok := tr.Lookup(ip); !ok || v != 7 {
		t.Errorf("host route lookup = %d,%v", v, ok)
	}
	if _, ok := tr.Lookup(ip + 1); ok {
		t.Error("adjacent address should miss")
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	var tr Trie[int]
	ps := []string{"10.0.0.0/8", "10.0.0.0/16", "192.0.2.0/24", "0.0.0.0/0"}
	for i, s := range ps {
		tr.Insert(mustPrefix(t, s), i)
	}
	var seen []string
	tr.Walk(func(p Prefix, _ int) bool {
		seen = append(seen, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/16", "192.0.2.0/24"}
	if len(seen) != len(want) {
		t.Fatalf("walked %d prefixes; want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("walk[%d] = %s; want %s", i, seen[i], want[i])
		}
	}
	var count int
	tr.Walk(func(Prefix, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early-stop walk visited %d; want 1", count)
	}
}

func TestPrefixesSorted(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "192.0.2.0/24"), 0)
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 0)
	got := tr.Prefixes()
	if len(got) != 2 || got[0].String() != "10.0.0.0/8" || got[1].String() != "192.0.2.0/24" {
		t.Errorf("Prefixes() = %v", got)
	}
}

// Property: LPM result agrees with a linear scan over all inserted prefixes.
func TestLookupMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr Trie[int]
	type entry struct {
		p Prefix
		v int
	}
	var entries []entry
	for i := 0; i < 500; i++ {
		p := MakePrefix(rng.Uint32(), uint8(rng.Intn(33)))
		tr.Insert(p, i)
		// Keep only the latest value per canonical prefix, as Insert replaces.
		replaced := false
		for j := range entries {
			if entries[j].p == p {
				entries[j].v = i
				replaced = true
				break
			}
		}
		if !replaced {
			entries = append(entries, entry{p, i})
		}
	}
	for i := 0; i < 2000; i++ {
		ip := rng.Uint32()
		bestLen := -1
		bestVal := 0
		for _, e := range entries {
			if e.p.Contains(ip) && int(e.p.Len) > bestLen {
				bestLen, bestVal = int(e.p.Len), e.v
			}
		}
		got, ok := tr.Lookup(ip)
		if bestLen == -1 {
			if ok {
				t.Fatalf("ip %s: trie found %d, linear scan found nothing", FormatIP(ip), got)
			}
			continue
		}
		if !ok || got != bestVal {
			t.Fatalf("ip %s: trie %d,%v; linear %d", FormatIP(ip), got, ok, bestVal)
		}
	}
}

// Property: parse(format(p)) == p for arbitrary prefixes.
func TestQuickParseFormatRoundTrip(t *testing.T) {
	f := func(addr uint32, plen uint8) bool {
		p := MakePrefix(addr, plen%33)
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mask invariants — Mask(l) has exactly l leading ones.
func TestQuickMaskBits(t *testing.T) {
	f := func(plen uint8) bool {
		l := plen % 33
		m := Mask(l)
		ones := 0
		for i := 31; i >= 0; i-- {
			if m&(1<<uint(i)) != 0 {
				ones++
			} else {
				break
			}
		}
		rest := m << uint(ones)
		return ones == int(l) && rest == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tr Trie[int]
	for i := 0; i < 100000; i++ {
		tr.Insert(MakePrefix(rng.Uint32(), uint8(8+rng.Intn(17))), i)
	}
	ips := make([]uint32, 1024)
	for i := range ips {
		ips[i] = rng.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(ips[i&1023])
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	prefixes := make([]Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = MakePrefix(rng.Uint32(), uint8(8+rng.Intn(17)))
	}
	b.ResetTimer()
	var tr Trie[int]
	for i := 0; i < b.N; i++ {
		tr.Insert(prefixes[i&4095], i)
	}
}

func TestLookupPrefixCanonical(t *testing.T) {
	var tr Trie[int]
	p := mustPrefix(t, "10.128.0.0/9")
	tr.Insert(p, 1)
	got, v, ok := tr.LookupPrefix(mustIP(t, "10.200.0.1"))
	if !ok || v != 1 || got != p {
		t.Fatalf("LookupPrefix = %v,%d,%v; want %v,1,true", got, v, ok, p)
	}
}

func TestDeleteDoesNotAffectSiblings(t *testing.T) {
	var tr Trie[int]
	a := mustPrefix(t, "10.0.0.0/9")
	b := mustPrefix(t, "10.128.0.0/9")
	tr.Insert(a, 1)
	tr.Insert(b, 2)
	tr.Delete(a)
	if v, ok := tr.Lookup(mustIP(t, "10.200.0.1")); !ok || v != 2 {
		t.Fatalf("sibling lost: %d,%v", v, ok)
	}
	if _, ok := tr.Lookup(mustIP(t, "10.1.0.1")); ok {
		t.Fatal("deleted branch still resolves")
	}
}
