// Package trie implements a binary prefix trie over IPv4 prefixes with
// longest-prefix-match lookups. It is the substrate for IP-to-AS mapping and
// for finding the most specific BGP prefix covering a traceroute destination
// (paper §4.1.1 and Appendix A).
package trie

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Prefix is an IPv4 prefix in host byte order. Addr must have all bits below
// the mask length cleared.
type Prefix struct {
	Addr uint32
	Len  uint8
}

// MakePrefix masks addr to plen bits and returns the canonical prefix.
func MakePrefix(addr uint32, plen uint8) Prefix {
	return Prefix{Addr: addr & Mask(plen), Len: plen}
}

// Mask returns the network mask for a prefix length.
func Mask(plen uint8) uint32 {
	if plen == 0 {
		return 0
	}
	if plen >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - plen)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	return ip&Mask(p.Len) == p.Addr
}

// ContainsPrefix reports whether q is equal to or more specific than p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// String renders the prefix in dotted-quad/len notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Len)
}

// ParsePrefix parses "a.b.c.d/len". It canonicalizes the address to the mask.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("trie: bad prefix %q: missing /len", s)
	}
	addr, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("trie: bad prefix %q: %w", s, err)
	}
	l, err := strconv.Atoi(s[slash+1:])
	if err != nil || l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("trie: bad prefix %q: invalid length", s)
	}
	return MakePrefix(addr, uint8(l)), nil
}

// FormatIP renders an IPv4 address in dotted-quad notation.
func FormatIP(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("trie: bad ip %q: want 4 octets", s)
	}
	var ip uint32
	for _, p := range parts {
		o, err := strconv.Atoi(p)
		if err != nil || o < 0 || o > 255 {
			return 0, fmt.Errorf("trie: bad ip %q: octet out of range", s)
		}
		ip = ip<<8 | uint32(o)
	}
	return ip, nil
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// Trie maps IPv4 prefixes to values of type V with longest-prefix-match
// semantics. The zero value is ready to use. Trie is not safe for concurrent
// mutation; concurrent lookups without writers are safe.
type Trie[V any] struct {
	root node[V]
	n    int
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.n }

// Insert stores v under p, replacing any previous value.
func (t *Trie[V]) Insert(p Prefix, v V) {
	cur := &t.root
	for i := 0; i < int(p.Len); i++ {
		bit := (p.Addr >> (31 - i)) & 1
		if cur.child[bit] == nil {
			cur.child[bit] = &node[V]{}
		}
		cur = cur.child[bit]
	}
	if !cur.set {
		t.n++
	}
	cur.val, cur.set = v, true
}

// Delete removes the exact prefix p. It reports whether p was present.
// Interior nodes are retained; deletion is rare in our workloads.
func (t *Trie[V]) Delete(p Prefix) bool {
	cur := &t.root
	for i := 0; i < int(p.Len); i++ {
		bit := (p.Addr >> (31 - i)) & 1
		if cur.child[bit] == nil {
			return false
		}
		cur = cur.child[bit]
	}
	if !cur.set {
		return false
	}
	var zero V
	cur.val, cur.set = zero, false
	t.n--
	return true
}

// Get returns the value stored under the exact prefix p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	cur := &t.root
	for i := 0; i < int(p.Len); i++ {
		bit := (p.Addr >> (31 - i)) & 1
		if cur.child[bit] == nil {
			var zero V
			return zero, false
		}
		cur = cur.child[bit]
	}
	return cur.val, cur.set
}

// Lookup returns the value of the longest prefix containing ip.
func (t *Trie[V]) Lookup(ip uint32) (V, bool) {
	var (
		best  V
		found bool
		cur   = &t.root
		i     int
	)
	for {
		if cur.set {
			best, found = cur.val, true
		}
		if i == 32 {
			break
		}
		bit := (ip >> (31 - i)) & 1
		if cur.child[bit] == nil {
			break
		}
		cur = cur.child[bit]
		i++
	}
	return best, found
}

// LookupPrefix returns the longest stored prefix containing ip along with its
// value.
func (t *Trie[V]) LookupPrefix(ip uint32) (Prefix, V, bool) {
	var (
		best    Prefix
		bestVal V
		found   bool
		cur     = &t.root
	)
	for i := 0; ; i++ {
		if cur.set {
			best = MakePrefix(ip, uint8(i))
			bestVal = cur.val
			found = true
		}
		if i == 32 {
			break
		}
		bit := (ip >> (31 - i)) & 1
		if cur.child[bit] == nil {
			break
		}
		cur = cur.child[bit]
	}
	return best, bestVal, found
}

// Walk visits every stored prefix in lexicographic (address, length) order.
// The walk stops early if fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	t.walk(&t.root, 0, 0, fn)
}

func (t *Trie[V]) walk(n *node[V], addr uint32, depth uint8, fn func(Prefix, V) bool) bool {
	if n.set && !fn(Prefix{Addr: addr, Len: depth}, n.val) {
		return false
	}
	if depth == 32 {
		return true
	}
	if n.child[0] != nil && !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	if n.child[1] != nil && !t.walk(n.child[1], addr|1<<(31-depth), depth+1, fn) {
		return false
	}
	return true
}

// Prefixes returns all stored prefixes sorted by address then length.
func (t *Trie[V]) Prefixes() []Prefix {
	out := make([]Prefix, 0, t.n)
	t.Walk(func(p Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}
