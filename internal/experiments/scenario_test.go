package experiments

import (
	"testing"

	"rrr/internal/events"
	"rrr/internal/netsim"
	"rrr/internal/trie"
)

func mustPrefix(t *testing.T, s string) trie.Prefix {
	t.Helper()
	p, err := trie.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

// TestScenarioAccuracy runs the headline adversarial harness at test scale
// and pins loose floors under the calibrated BENCH gates: the classifiers
// must find nearly everything the pack injected without drowning in false
// positives, and the staleness engine's verdict accuracy must not collapse
// under adversarial churn.
func TestScenarioAccuracy(t *testing.T) {
	sc := QuickScale()
	sc.Days = 4
	sc.PublicPerWindow = 20
	res := RunScenarioAccuracy(sc, netsim.FullPack(), 4242)

	if res.TruthCount < 10 {
		t.Fatalf("vacuous scenario: only %d ground-truth episodes", res.TruthCount)
	}
	if res.EventCount == 0 {
		t.Fatal("detector emitted no events under a full pack")
	}
	if res.Precision < 0.8 {
		t.Errorf("event precision %.3f below floor 0.8 (classes: %+v)", res.Precision, res.Classes)
	}
	if res.Recall < 0.8 {
		t.Errorf("event recall %.3f below floor 0.8 (classes: %+v)", res.Recall, res.Classes)
	}
	if res.BenignStaleAcc <= 0.5 {
		t.Errorf("benign staleness accuracy %.3f is no better than chance", res.BenignStaleAcc)
	}
	if res.Degradation > 0.1 {
		t.Errorf("adversarial churn degraded staleness accuracy by %.3f (benign %.3f, adversarial %.3f)",
			res.Degradation, res.BenignStaleAcc, res.AdversarialStaleAcc)
	}
	// Every enabled class should have produced at least one ground-truth
	// episode at this scale except diurnal's long-horizon label.
	seen := map[string]bool{}
	for _, cs := range res.Classes {
		seen[cs.Class] = true
	}
	for _, want := range []string{"hijack-origin", "hijack-moas", "hijack-subprefix", "route-leak", "blackhole", "trace-cycle", "trace-diamond"} {
		if !seen[want] {
			t.Errorf("no score row for class %s: %+v", want, res.Classes)
		}
	}
}

// TestScoreEventsBenignOnlyMatchIsFalsePositive pins the scoring rule the
// edge-case packs depend on: an event explained only by a benign label
// (stable anycast, a self-healed leak) counts against precision.
func TestScoreEventsBenignOnlyMatchIsFalsePositive(t *testing.T) {
	p := mustPrefix(t, "16.1.0.0/16")
	truths := []events.Truth{
		{Class: events.HijackMOAS, Start: 0, End: 86400, Prefix: p, Benign: true},
	}
	evs := []events.Event{
		{Class: events.HijackMOAS, WindowStart: 900, Prefix: p},
	}
	classes, prec, rec := scoreEvents(evs, truths, 900)
	if prec != 0 {
		t.Fatalf("precision %v for a benign-only match, want 0 (%+v)", prec, classes)
	}
	if rec != 0 {
		t.Fatalf("recall %v with no non-benign truths, want 0", rec)
	}
	if len(classes) != 1 || classes[0].FP != 1 || classes[0].TP != 0 {
		t.Fatalf("class rows: %+v", classes)
	}
}

// TestScoreEventsMatching pins TP/FN bookkeeping for the mixed case.
func TestScoreEventsMatching(t *testing.T) {
	p1 := mustPrefix(t, "16.1.0.0/16")
	p2 := mustPrefix(t, "16.2.0.0/16")
	truths := []events.Truth{
		{Class: events.RouteLeak, Start: 900, End: 1800, Prefix: p1, AS: 64512},
		{Class: events.RouteLeak, Start: 90000, End: 90900, Prefix: p2, AS: 64513}, // never detected
	}
	evs := []events.Event{
		{Class: events.RouteLeak, WindowStart: 900, Prefix: p1, AS: 64512},   // TP
		{Class: events.RouteLeak, WindowStart: 45000, Prefix: p1, AS: 64512}, // out of interval: FP
	}
	classes, prec, rec := scoreEvents(evs, truths, 900)
	if len(classes) != 1 {
		t.Fatalf("class rows: %+v", classes)
	}
	cs := classes[0]
	if cs.TP != 1 || cs.FP != 1 || cs.FN != 1 {
		t.Fatalf("tally = %+v, want TP=1 FP=1 FN=1", cs)
	}
	if prec != 0.5 || rec != 0.5 {
		t.Fatalf("prec=%v rec=%v, want 0.5/0.5", prec, rec)
	}
}
