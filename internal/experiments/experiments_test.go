package experiments

import (
	"testing"

	"rrr/internal/core"
	"rrr/internal/netsim"
)

// The experiment tests assert the qualitative shapes the paper reports, at
// a scale small enough for CI. EXPERIMENTS.md records the full-size runs.

func tinyScale() Scale {
	sc := QuickScale()
	sc.Days = 4
	return sc
}

func TestRetrospectiveShape(t *testing.T) {
	r := RunRetrospective(tinyScale())
	if r.CorpusSize < 100 {
		t.Fatalf("corpus too small: %d", r.CorpusSize)
	}
	if r.TotalChanges == 0 {
		t.Fatal("no ground-truth changes")
	}
	if r.BorderChanges == 0 || r.ASChanges == 0 {
		t.Fatalf("change mix degenerate: AS=%d border=%d", r.ASChanges, r.BorderChanges)
	}
	// Each technique has high precision and the combination is needed for
	// coverage (the paper's Table 2 headline).
	if r.AllTechniques.Precision < 0.6 {
		t.Errorf("combined precision %.2f < 0.6", r.AllTechniques.Precision)
	}
	if r.AllTechniques.CovAll < 0.1 {
		t.Errorf("combined coverage %.2f < 0.1", r.AllTechniques.CovAll)
	}
	contributing := 0
	for _, row := range r.Table2 {
		if row.Signals > 0 {
			contributing++
		}
	}
	if contributing < 4 {
		t.Errorf("only %d techniques produced signals", contributing)
	}
	// Fig 1: changes accumulate; the final fraction exceeds the first and
	// stays well below 1 (most paths remain fresh, §2).
	if n := len(r.Fig1Border); n >= 2 {
		if r.Fig1Border[n-1] <= 0 {
			t.Error("no accumulated changes in Fig 1")
		}
		if r.Fig1Border[n-1] > 0.8 {
			t.Errorf("implausible change fraction %.2f", r.Fig1Border[n-1])
		}
	}
	// Signals without any changes nearby should be rare: per-day precision
	// stays above coin-flip on at least half the days.
	good := 0
	for _, p := range r.Fig6Precision {
		if p >= 0.5 {
			good++
		}
	}
	if good*2 < len(r.Fig6Precision) {
		t.Errorf("daily precision below 0.5 on most days: %v", r.Fig6Precision)
	}
}

func TestLiveShape(t *testing.T) {
	sc := tinyScale()
	sc.Days = 3
	r := RunLive(sc, 30)
	if r.CorpusSize == 0 || r.SignalRefreshes == 0 || r.RandomRefreshes == 0 {
		t.Fatalf("live run degenerate: %+v", r)
	}
	sigPrec := safeFrac(r.SignalChanged, r.SignalRefreshes)
	rndPrec := safeFrac(r.RandomChanged, r.RandomRefreshes)
	// Fig 7a's headline: signal-driven refreshes reveal changes far more
	// often than random ones.
	if sigPrec <= rndPrec {
		t.Errorf("signal precision %.2f <= random %.2f", sigPrec, rndPrec)
	}
}

func TestFig8Shape(t *testing.T) {
	sc := tinyScale()
	sc.Days = 3
	r := RunFig8(sc, 120, []float64{0.0005, 0.02})
	if r.TotalChanges == 0 {
		t.Fatal("no ground-truth changes")
	}
	// More budget detects at least as much, for every strategy.
	for name, ys := range map[string][]float64{
		"roundrobin": r.RoundRobin, "sibyl": r.Sibyl,
		"dtrack": r.DTrack, "signals": r.Signals, "ds": r.DTrackSignals,
	} {
		if ys[1] < ys[0]-0.05 {
			t.Errorf("%s not budget-monotone: %v", name, ys)
		}
	}
	// DTRACK+SIGNALS dominates signals alone at high budget (§6.1), and
	// signals cannot exceed their coverage bound.
	if r.DTrackSignals[1] < r.Signals[1] {
		t.Errorf("dtrack+signals %.2f < signals %.2f at high budget",
			r.DTrackSignals[1], r.Signals[1])
	}
	for _, y := range r.Signals {
		if y > r.Optimal+0.01 {
			t.Errorf("signals %.2f exceed optimal bound %.2f", y, r.Optimal)
		}
	}
}

func TestDiamondsShape(t *testing.T) {
	r := RunDiamonds(tinyScale())
	if r.NonLBSegments == 0 {
		t.Fatal("no segments")
	}
	// §5.4: techniques do not flood LB segments with signals; flagged
	// fractions are comparable.
	if r.LBSegments > 0 && r.LBFlaggedFrac > r.NonLBFlaggedFrac+0.5 {
		t.Errorf("LB segments disproportionately flagged: %.2f vs %.2f",
			r.LBFlaggedFrac, r.NonLBFlaggedFrac)
	}
}

func TestArchivalShape(t *testing.T) {
	sc := tinyScale()
	sc.Days = 3
	r := RunArchival(sc, 300)
	if r.ArchiveSize == 0 || len(r.Fresh) == 0 {
		t.Fatal("archival run degenerate")
	}
	last := len(r.Fresh) - 1
	total := r.Fresh[last] + r.Stale[last] + r.DeadProbe[last] + r.Unknown[last]
	if total == 0 {
		t.Fatal("no classified archive entries")
	}
	// §6.2's headline: the majority of the archive stays reusable.
	if frac := float64(r.Fresh[last]) / float64(total); frac < 0.5 {
		t.Errorf("fresh fraction %.2f < 0.5", frac)
	}
	if r.UDMSatisfiableFrac <= 0 || r.UDMAvoidableFrac >= r.UDMSatisfiableFrac {
		t.Errorf("UDM fractions inconsistent: %.2f / %.2f",
			r.UDMSatisfiableFrac, r.UDMAvoidableFrac)
	}
}

func TestCensusShape(t *testing.T) {
	sc := tinyScale()
	sc.Days = 2
	r := RunCensus(sc)
	if r.BorderIPs == 0 {
		t.Fatal("no border IPs")
	}
	// Fig 14: border IPs are shared across AS pairs; some widely.
	maxPairs := r.ASPairsPerIP[len(r.ASPairsPerIP)-1]
	if maxPairs < 2 {
		t.Errorf("no border IP shared across AS pairs (max=%d)", maxPairs)
	}
	// Fig 15: changed border IPs tend to sit in at least as many paths.
	if len(r.PathsPerIPChanged) > 0 && r.FracChangedInOver10 < r.FracUnchangedInOver10-0.3 {
		t.Errorf("changed IPs unusually under-covered: %.2f vs %.2f",
			r.FracChangedInOver10, r.FracUnchangedInOver10)
	}
}

func TestGeoValidationShape(t *testing.T) {
	r := RunGeoValidation(tinyScale())
	if r.Located == 0 {
		t.Fatal("pipeline located nothing")
	}
	// Fig 12's ordering: agreement with the crowd-sourced profile beats
	// the router DB, which beats the general-purpose DB.
	if !(r.Crowd.Exact >= r.RouterDB.Exact && r.RouterDB.Exact >= r.General.Exact) {
		t.Errorf("DB agreement ordering violated: %.2f %.2f %.2f",
			r.Crowd.Exact, r.RouterDB.Exact, r.General.Exact)
	}
	for _, db := range []struct{ e, u1, u5 float64 }{
		{r.Crowd.Exact, r.Crowd.Under100, r.Crowd.Under500},
		{r.General.Exact, r.General.Under100, r.General.Under500},
	} {
		if db.u1 > db.u5 || db.e > db.u5+1e-9 {
			t.Errorf("CDF not monotone: %+v", db)
		}
	}
}

func TestIPlaneShape(t *testing.T) {
	sc := tinyScale()
	sc.Days = 3
	r := RunIPlane(sc)
	if r.Predictions == 0 || len(r.Day) == 0 {
		t.Fatal("no predictions")
	}
	last := len(r.Day) - 1
	// Fig 16a: pruning never leaves the corpus more stale than not
	// pruning (small slack for sampling).
	if r.InvalidPruned[last] > r.InvalidUnpruned[last]+0.1 {
		t.Errorf("pruned invalidity %.2f > unpruned %.2f",
			r.InvalidPruned[last], r.InvalidUnpruned[last])
	}
	// Fig 16b: a meaningful fraction of valid splices is retained.
	if r.RetainedValid[last] < 0.3 {
		t.Errorf("retained %.2f < 0.3", r.RetainedValid[last])
	}
}

func TestMonitorStatsReporting(t *testing.T) {
	sc := tinyScale()
	sc.Days = 1
	lab := NewLab(sc)
	lab.BuildCorpus()
	for w := 0; w < 96; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+450)
		lab.Engine.CloseWindow(ws)
	}
	st := lab.Engine.MonitorStats()
	if st.ASPathMonitors == 0 || st.BurstMonitors == 0 || st.SubpathMonitors == 0 {
		t.Fatalf("stats degenerate: %+v", st)
	}
	_ = core.DefaultConfig()
}

func TestLabRelClassification(t *testing.T) {
	lab := NewLab(tinyScale())
	rel := lab.Rel
	checkedPub, checkedPriv, checkedCust := false, false, false
	for i := 1; i < len(lab.Sim.T.Links); i++ {
		l := lab.Sim.T.Links[i]
		switch lab.Sim.T.ASes[l.AAS].Rel[l.BAS] {
		case netsim.RelCustomer:
			if rel.Rel(l.AAS, l.BAS) != core.RelCustomerOf {
				t.Fatalf("customer link misclassified: %s-%s", l.AAS, l.BAS)
			}
			if rel.Rel(l.BAS, l.AAS) != core.RelProviderOf {
				t.Fatalf("provider direction misclassified: %s-%s", l.BAS, l.AAS)
			}
			checkedCust = true
		case netsim.RelPeer:
			got := rel.Rel(l.AAS, l.BAS)
			if l.IXP != 0 && got != core.RelPeerPublic {
				// Public peering needs only one IXP link between the pair.
				t.Fatalf("IXP peer misclassified as %v", got)
			}
			if got == core.RelPeerPublic {
				checkedPub = true
			} else if got == core.RelPeerPrivate {
				checkedPriv = true
			}
		}
	}
	if !checkedCust || !checkedPub || !checkedPriv {
		t.Skipf("relationship variety missing: cust=%v pub=%v priv=%v",
			checkedCust, checkedPub, checkedPriv)
	}
	if rel.Rel(1, 2) != core.RelNone {
		t.Fatal("unrelated ASes should be RelNone")
	}
}

func TestEveryCorpusPairMonitorable(t *testing.T) {
	lab := NewLab(tinyScale())
	lab.BuildCorpus()
	uncovered := 0
	for _, k := range lab.Corp.Keys() {
		if len(lab.Engine.Registrations(k)) == 0 {
			uncovered++
		}
	}
	// A few pairs may lack all visibility, but the overwhelming majority
	// must have at least one potential signal (Appendix C's overlap).
	if frac := float64(uncovered) / float64(lab.Corp.Len()); frac > 0.05 {
		t.Fatalf("%.1f%% of corpus pairs unmonitorable", 100*frac)
	}
}
