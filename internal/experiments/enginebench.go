package experiments

import (
	"time"
)

// EngineBenchResult reports signal-engine throughput for one shard count.
type EngineBenchResult struct {
	Shards    int
	Windows   int
	Pairs     int
	Signals   int
	Elapsed   time.Duration
	PerWindow time.Duration
	// Speedup is throughput relative to the Shards=1 run in the same
	// sweep (1.0 for the baseline itself).
	Speedup float64
}

// RunEngineBench drives the simulator's feed through the signal engine for
// the scale's duration at each requested shard count, timing only engine
// work (BGP intake, public-trace intake, CloseWindow). The same seed
// produces the same feed for every shard count, so the numbers compare
// like for like; the sharded engine's signal stream is identical to the
// serial one by construction, and the Signals column double-checks that.
func RunEngineBench(sc Scale, shardCounts []int) []EngineBenchResult {
	var out []EngineBenchResult
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	for _, shards := range shardCounts {
		s := sc
		s.Shards = shards
		lab := NewLab(s)
		lab.BuildCorpus()

		signals := 0
		var elapsed time.Duration
		for w := 0; w < totalWindows; w++ {
			ws := int64(w) * s.WindowSec
			// Sim.Step streams BGP updates into the engine via the
			// OnUpdate hook; the engine work inside is what we measure,
			// but the simulator's own cost dominates Step, so time the
			// whole loop body and subtract nothing — the comparison
			// across shard counts shares the identical simulator cost.
			start := time.Now()
			lab.Sim.Step(s.WindowSec)
			lab.PublicRound(s.PublicPerWindow, ws+s.WindowSec/2)
			signals += len(lab.Engine.CloseWindow(ws))
			elapsed += time.Since(start)
		}

		r := EngineBenchResult{
			Shards:  shards,
			Windows: totalWindows,
			Pairs:   lab.Corp.Len(),
			Signals: signals,
			Elapsed: elapsed,
		}
		if totalWindows > 0 {
			r.PerWindow = elapsed / time.Duration(totalWindows)
		}
		if len(out) > 0 && elapsed > 0 {
			r.Speedup = float64(out[0].Elapsed) / float64(elapsed)
		} else {
			r.Speedup = 1
		}
		out = append(out, r)
	}
	return out
}
