package experiments

import (
	"time"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
)

// EngineBenchResult reports signal-engine throughput for one shard count.
type EngineBenchResult struct {
	Shards    int
	Windows   int
	Pairs     int
	Signals   int
	Elapsed   time.Duration
	PerWindow time.Duration
	// Speedup is throughput relative to the Shards=1 run in the same
	// sweep (1.0 for the baseline itself).
	Speedup float64
}

// capturedWindow is one window of recorded feed: the BGP updates the
// simulator emitted and the public traceroutes the platform issued.
type capturedWindow struct {
	start   int64
	updates []bgp.Update
	traces  []*traceroute.Traceroute
}

// RunEngineBench measures signal-engine throughput at each requested shard
// count. The simulator's feed for the scale's duration is recorded ONCE
// (updates and public traceroutes per window), then replayed into a fresh
// engine per shard count; only the replay — BGP intake, trace intake,
// CloseWindow — is timed. Earlier versions timed the simulator stepping
// alongside the engine, which diluted the measured speedup with a large
// constant cost shared by every shard count. Traces are never mutated by
// ingestion (the engine patches a clone), so replaying the same recorded
// pointers keeps every run's input byte-identical; the Signals column
// double-checks that the sharded engine's stream matches the serial one.
func RunEngineBench(sc Scale, shardCounts []int) []EngineBenchResult {
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)

	// Record the feed once. The recorder lab's own engine also ingests
	// (OnUpdate subscribers accumulate), which is harmless: nothing in the
	// recording phase is timed.
	rec := NewLab(sc)
	rec.BuildCorpus()
	wins := make([]capturedWindow, totalWindows)
	cur := -1
	rec.Sim.OnUpdate(func(u bgp.Update) { wins[cur].updates = append(wins[cur].updates, u) })
	rec.OnPublicTrace = func(tr *traceroute.Traceroute) { wins[cur].traces = append(wins[cur].traces, tr) }
	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		cur = w
		wins[w].start = ws
		rec.Sim.Step(sc.WindowSec)
		rec.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
	}

	var out []EngineBenchResult
	for _, shards := range shardCounts {
		s := sc
		s.Shards = shards
		lab := NewLab(s)
		lab.BuildCorpus()

		signals := 0
		var elapsed time.Duration
		for i := range wins {
			w := &wins[i]
			start := time.Now()
			for _, u := range w.updates {
				lab.Engine.ObserveBGP(u)
			}
			for _, tr := range w.traces {
				lab.Engine.ObservePublicTrace(tr)
			}
			signals += len(lab.Engine.CloseWindow(w.start))
			elapsed += time.Since(start)
		}

		r := EngineBenchResult{
			Shards:  shards,
			Windows: totalWindows,
			Pairs:   lab.Corp.Len(),
			Signals: signals,
			Elapsed: elapsed,
		}
		if totalWindows > 0 {
			r.PerWindow = elapsed / time.Duration(totalWindows)
		}
		if len(out) > 0 && elapsed > 0 {
			r.Speedup = float64(out[0].Elapsed) / float64(elapsed)
		} else {
			r.Speedup = 1
		}
		out = append(out, r)
	}
	return out
}
