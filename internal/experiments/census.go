package experiments

import (
	"sort"

	"rrr/internal/geo"
)

// CensusResult carries Appendix C's Fig 14 and Fig 15: how widely border
// IPs are shared across AS pairs and paths, split by involvement in
// changes.
type CensusResult struct {
	BorderIPs int
	// ASPairsPerIP is the sorted per-border-IP count of adjacent AS pairs
	// using it (Fig 14's CDF).
	ASPairsPerIP []int
	// PathsPerIPChanged / PathsPerIPUnchanged are the sorted per-border-IP
	// path counts, split by whether the IP was involved in a change
	// during the run (Fig 15's two CDFs).
	PathsPerIPChanged   []int
	PathsPerIPUnchanged []int
	// Convenience fractions the paper quotes.
	FracUsedByOver10Pairs float64
	FracChangedInOver10   float64
	FracUnchangedInOver10 float64
}

// RunCensus builds the corpus, lets the simulator run, and tallies
// border-IP sharing plus change involvement.
func RunCensus(sc Scale) *CensusResult {
	lab := NewLab(sc)
	lab.BuildCorpus()
	keys := lab.Corp.Keys()

	// Record initial border IPs per pair.
	census := lab.Corp.Census()

	// Advance the simulator, then remeasure to find changed border IPs.
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	for w := 0; w < totalWindows; w++ {
		lab.Sim.Step(sc.WindowSec)
	}
	now := int64(totalWindows) * sc.WindowSec
	changedIPs := make(map[uint32]bool)
	for _, k := range keys {
		en, ok := lab.Corp.Get(k)
		if !ok {
			continue
		}
		fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
		if err != nil {
			continue
		}
		newSet := make(map[uint32]bool, len(fresh.Borders))
		for _, b := range fresh.Borders {
			newSet[b.FarIP] = true
		}
		for _, b := range en.Borders {
			if !newSet[b.FarIP] {
				changedIPs[b.FarIP] = true
			}
		}
	}

	res := &CensusResult{BorderIPs: len(census.ASPairs)}
	over10Pairs := 0
	for ip, pairs := range census.ASPairs {
		res.ASPairsPerIP = append(res.ASPairsPerIP, len(pairs))
		if len(pairs) > 10 {
			over10Pairs++
		}
		nPaths := len(census.Paths[ip])
		if changedIPs[ip] {
			res.PathsPerIPChanged = append(res.PathsPerIPChanged, nPaths)
		} else {
			res.PathsPerIPUnchanged = append(res.PathsPerIPUnchanged, nPaths)
		}
	}
	sort.Ints(res.ASPairsPerIP)
	sort.Ints(res.PathsPerIPChanged)
	sort.Ints(res.PathsPerIPUnchanged)
	res.FracUsedByOver10Pairs = safeFrac(over10Pairs, res.BorderIPs)
	res.FracChangedInOver10 = fracOver(res.PathsPerIPChanged, 10)
	res.FracUnchangedInOver10 = fracOver(res.PathsPerIPUnchanged, 10)
	return res
}

func fracOver(sorted []int, threshold int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	n := 0
	for _, v := range sorted {
		if v >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(sorted))
}

// GeoValidationResult carries Appendix A's Fig 12: our geolocation
// technique compared against three reference databases.
type GeoValidationResult struct {
	// Per database: exact-match fraction and fractions under 100 km and
	// 500 km.
	Crowd, RouterDB, General struct {
		Name     string
		Overlap  int
		Exact    float64
		Under100 float64
		Under500 float64
	}
	Located    int
	LocateRate float64
}

// RunGeoValidation reproduces the Fig 12 comparison with synthetic
// databases matching the paper's three reference profiles.
func RunGeoValidation(sc Scale) *GeoValidationResult {
	lab := NewLab(sc)
	var ips []uint32
	for i := 1; i < len(lab.Sim.T.Routers); i++ {
		ips = append(ips, lab.Sim.T.Routers[i].Loopback)
	}
	// The validated technique is the measurement pipeline itself (no DB).
	locator := geo.NewLocator(lab.Sim, nil)

	located := 0
	for _, ip := range ips {
		if _, _, ok := locator.Locate(ip, 100); ok {
			located++
		}
	}

	mk := func(name string, p geo.DBProfile, seed int64) (out struct {
		Name     string
		Overlap  int
		Exact    float64
		Under100 float64
		Under500 float64
	}) {
		db := geo.BuildDB(lab.Sim, ips, p, seed)
		results := geo.Validate(locator, db, ips, 100)
		exact, under := geo.CDF(results, []float64{100, 500})
		out.Name = name
		out.Overlap = len(results)
		out.Exact = exact
		out.Under100 = under[0]
		out.Under500 = under[1]
		return out
	}
	res := &GeoValidationResult{Located: located, LocateRate: safeFrac(located, len(ips))}
	res.Crowd = mk("crowd-sourced", geo.DBProfile{
		Name: "crowd", Coverage: 0.1, ExactFrac: 0.97, NearFrac: 0.02}, 41)
	res.RouterDB = mk("router-specific", geo.DBProfile{
		Name: "router", Coverage: 0.4, ExactFrac: 0.78, NearFrac: 0.12}, 42)
	res.General = mk("general-purpose", geo.DBProfile{
		Name: "general", Coverage: 1.0, ExactFrac: 0.62, NearFrac: 0.2}, 43)
	return res
}
