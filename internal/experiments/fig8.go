package experiments

import (
	"strings"

	"rrr/internal/baselines"
	"rrr/internal/bordermap"
	"rrr/internal/traceroute"
)

// Fig8Result carries the budget sweep of §5.3/§6.1: the fraction of
// border-level changes each approach detects at each average per-path
// probing rate.
type Fig8Result struct {
	// PPS is the x-axis: average probing packets per second per path.
	PPS []float64
	// Fractions per strategy, indexed like PPS.
	RoundRobin    []float64
	Sibyl         []float64
	DTrack        []float64
	Signals       []float64
	DTrackSignals []float64
	// Optimal is budget-independent (the signals' coverage bound).
	Optimal float64
	// TotalChanges in the pseudo-ground-truth.
	TotalChanges int
	// SignalCoverage is the fraction of changes with a matched signal.
	SignalCoverage float64
}

// RunFig8 builds a DTRACK-style pseudo-ground-truth (dense measurements of
// every monitored pair), runs the engine over the same period to produce a
// signal feed, and emulates every approach across the probing-budget sweep.
func RunFig8(sc Scale, pairs int, ppsSweep []float64) *Fig8Result {
	lab := NewLab(sc)
	lab.BuildCorpus()
	keys := lab.Corp.Keys()
	if pairs > 0 && len(keys) > pairs {
		keys = keys[:pairs]
	}

	pathIDs := make(map[string]int)
	idOf := func(borders []bordermap.BorderHop) (int, []string) {
		var sb strings.Builder
		keysList := make([]string, 0, len(borders))
		for _, b := range borders {
			k := b.Key()
			keysList = append(keysList, k)
			sb.WriteString(k)
			sb.WriteByte('|')
		}
		s := sb.String()
		id, ok := pathIDs[s]
		if !ok {
			id = len(pathIDs) + 1
			pathIDs[s] = id
		}
		return id, keysList
	}

	timelines := make(map[traceroute.Key]*baselines.Timeline, len(keys))
	probeOf := make(map[traceroute.Key]int, len(keys))
	for _, k := range keys {
		timelines[k] = &baselines.Timeline{Key: k}
		en, _ := lab.Corp.Get(k)
		probeOf[k] = en.Trace.ProbeID
	}

	feed := baselines.SignalFeed{}
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	start, end := int64(0), int64(totalWindows)*sc.WindowSec

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
		for _, s := range lab.Engine.CloseWindow(ws) {
			if _, monitored := timelines[s.Key]; monitored {
				feed[s.Key] = append(feed[s.Key], s.WindowStart)
			}
		}
		// Dense ground-truth measurement of every pair (the 67 pps
		// PlanetLab pseudo-ground-truth of §5.3).
		now := ws + sc.WindowSec
		for _, k := range keys {
			en, err := lab.MeasurePair(k, probeOf[k], now)
			if err != nil {
				continue
			}
			id, borderKeys := idOf(en.Borders)
			timelines[k].Obs = append(timelines[k].Obs, baselines.PathObservation{
				Time: now, PathID: id, Borders: borderKeys,
			})
		}
	}

	var tls []*baselines.Timeline
	for _, k := range keys {
		if len(timelines[k].Obs) > 0 {
			tls = append(tls, timelines[k])
		}
	}
	oracle := baselines.NewOracle(tls)

	res := &Fig8Result{TotalChanges: oracle.TotalChanges(start, end)}
	opt := baselines.MatchOptimal(oracle, feed, 1800, start, end)
	res.Optimal = opt.Fraction()
	res.SignalCoverage = opt.Fraction()

	step := sc.WindowSec
	for _, pps := range ppsSweep {
		res.PPS = append(res.PPS, pps)
		rr := baselines.Evaluate(oracle, &baselines.RoundRobin{}, start, end, step, pps)
		res.RoundRobin = append(res.RoundRobin, rr.Fraction())
		sib := baselines.Evaluate(oracle, &baselines.Sibyl{}, start, end, step, pps)
		res.Sibyl = append(res.Sibyl, sib.Fraction())
		dt := baselines.Evaluate(oracle, baselines.NewDTrack(), start, end, step, pps)
		res.DTrack = append(res.DTrack, dt.Fraction())
		sig := baselines.EvaluateSignalsMatched(oracle, feed, 1800, start, end, step, pps)
		res.Signals = append(res.Signals, sig.Fraction())
		ds := baselines.Evaluate(oracle, baselines.NewDTrackSignals(feed), start, end, step, pps)
		res.DTrackSignals = append(res.DTrackSignals, ds.Fraction())
	}
	return res
}
