package experiments

import (
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/core"
	"rrr/internal/traceroute"
)

// DiamondsResult carries §5.4's load-balancing analysis: the distribution
// of staleness prediction signals per interdomain segment for load-balanced
// (diamond) versus non-load-balanced segments (Fig 9), and the per-segment
// precision distributions (Fig 10).
type DiamondsResult struct {
	LBSegments    int
	NonLBSegments int
	// Fraction of segments of each kind with at least one signal.
	LBFlaggedFrac    float64
	NonLBFlaggedFrac float64
	// Per-segment signal counts (sorted) for the Fig 9 CDFs.
	LBSignalCounts    []int
	NonLBSignalCounts []int
	// Per-segment precision values (sorted) for the Fig 10 CDFs, and their
	// medians.
	LBPrecision     []float64
	NonLBPrecision  []float64
	LBMedianPrec    float64
	NonLBMedianPrec float64
}

// RunDiamonds executes §5.4: run the traceroute-based techniques over a
// period and compare signal behaviour on segments crossing interdomain
// diamonds against ordinary segments.
func RunDiamonds(sc Scale) *DiamondsResult {
	lab := NewLab(sc)
	lab.BuildCorpus()
	keys := lab.Corp.Keys()

	lbPairs := make(map[[2]bgp.ASN]bool)
	for _, p := range lab.Sim.InterdomainLBPairs() {
		lbPairs[p] = true
		lbPairs[[2]bgp.ASN{p[1], p[0]}] = true
	}

	// Segment = ordered AS pair crossed by some corpus traceroute.
	type segStat struct {
		lb      bool
		signals int
		tp      int
	}
	segs := make(map[[2]bgp.ASN]*segStat)
	segOf := func(pair [2]bgp.ASN) *segStat {
		st := segs[pair]
		if st == nil {
			st = &segStat{lb: lbPairs[pair]}
			segs[pair] = st
		}
		return st
	}
	for _, k := range keys {
		en, _ := lab.Corp.Get(k)
		for _, b := range en.Borders {
			segOf([2]bgp.ASN{b.FromAS, b.ToAS})
		}
	}

	windowsPerRound := int(sc.RoundSec / sc.WindowSec)
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)

	type pendingSig struct {
		pair [2]bgp.ASN
		key  traceroute.Key
	}
	var pending []pendingSig

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
		for _, s := range lab.Engine.CloseWindow(ws) {
			// §5.4 evaluates the traceroute-based techniques.
			if s.Technique != core.TechTraceSubpath && s.Technique != core.TechTraceBorder {
				continue
			}
			en, ok := lab.Corp.Get(s.Key)
			if !ok {
				continue
			}
			for _, bi := range s.Borders {
				if bi >= len(en.Borders) {
					continue
				}
				b := en.Borders[bi]
				pair := [2]bgp.ASN{b.FromAS, b.ToAS}
				segOf(pair).signals++
				pending = append(pending, pendingSig{pair: pair, key: s.Key})
			}
		}
		if (w+1)%windowsPerRound != 0 {
			continue
		}
		// Round: resolve pending signals against ground truth.
		now := ws + sc.WindowSec
		changedPairs := make(map[traceroute.Key]map[[2]bgp.ASN]bool)
		for _, k := range keys {
			en, ok := lab.Corp.Get(k)
			if !ok {
				continue
			}
			fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
			if err != nil {
				continue
			}
			diff := changedSegments(en.Borders, fresh.Borders)
			if len(diff) > 0 {
				changedPairs[k] = diff
			}
			lab.Corp.Put(fresh)
			lab.Engine.Reregister(fresh)
		}
		for _, ps := range pending {
			if changedPairs[ps.key][ps.pair] {
				segs[ps.pair].tp++
			}
		}
		pending = pending[:0]
	}

	res := &DiamondsResult{}
	for _, st := range segs {
		if st.lb {
			res.LBSegments++
			res.LBSignalCounts = append(res.LBSignalCounts, st.signals)
			if st.signals > 0 {
				res.LBFlaggedFrac++
				res.LBPrecision = append(res.LBPrecision, float64(st.tp)/float64(st.signals))
			}
		} else {
			res.NonLBSegments++
			res.NonLBSignalCounts = append(res.NonLBSignalCounts, st.signals)
			if st.signals > 0 {
				res.NonLBFlaggedFrac++
				res.NonLBPrecision = append(res.NonLBPrecision, float64(st.tp)/float64(st.signals))
			}
		}
	}
	if res.LBSegments > 0 {
		res.LBFlaggedFrac /= float64(res.LBSegments)
	}
	if res.NonLBSegments > 0 {
		res.NonLBFlaggedFrac /= float64(res.NonLBSegments)
	}
	sort.Ints(res.LBSignalCounts)
	sort.Ints(res.NonLBSignalCounts)
	sort.Float64s(res.LBPrecision)
	sort.Float64s(res.NonLBPrecision)
	res.LBMedianPrec = medianF(res.LBPrecision)
	res.NonLBMedianPrec = medianF(res.NonLBPrecision)
	return res
}

// changedSegments returns the AS pairs whose border router changed between
// two measurements (visible in both).
func changedSegments(old, new []bordermap.BorderHop) map[[2]bgp.ASN]bool {
	byPair := func(bs []bordermap.BorderHop) map[[2]bgp.ASN]string {
		out := make(map[[2]bgp.ASN]string, len(bs))
		for _, b := range bs {
			out[[2]bgp.ASN{b.FromAS, b.ToAS}] += b.Key() + "|"
		}
		return out
	}
	om, nm := byPair(old), byPair(new)
	out := make(map[[2]bgp.ASN]bool)
	for pair, ok := range om {
		if nk, visible := nm[pair]; visible && nk != ok {
			out[pair] = true
		}
	}
	for pair := range nm {
		if _, wasVisible := om[pair]; !wasVisible {
			out[pair] = true // new crossing appeared
		}
	}
	return out
}

func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
