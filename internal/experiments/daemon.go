package experiments

import (
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/core"
	"rrr/internal/geo"
	"rrr/internal/netsim"
	"rrr/internal/platform"
	"rrr/internal/traceroute"
)

// DaemonEnv bundles everything a serving daemon (cmd/rrrd) needs to run a
// Monitor over live simulated feeds: the mapping services, an initial
// table dump, the initial corpus measurements, and two incremental feed
// sources that generate BGP updates and public traceroutes window by
// window as they are consumed. In a real deployment these would be a RIS /
// RouteViews stream and the RIPE Atlas firehose; the simulator stands in
// with the same interfaces.
type DaemonEnv struct {
	Sim  *netsim.Sim
	Plat *platform.Platform

	// Services for rrr.Options.
	Mapper     traceroute.Mapper
	Aliases    bordermap.AliasOracle
	Geo        core.Geolocator
	Rel        core.RelOracle
	IXPMembers map[int][]bgp.ASN

	// Dump primes the monitor's RIB view before streaming (the paper
	// starts BGP collection before corpus initialization).
	Dump []bgp.Update
	// Corpus holds the initial corpus traceroutes (anchoring round,
	// unresponsive hops patched); feed them to Monitor.Track.
	Corpus []*traceroute.Traceroute

	// Updates and Traces are the live feeds for rrr.Pipeline.
	Updates *SimUpdateFeed
	Traces  *SimTraceFeed

	// Scen is the adversarial scenario driving the feeds when
	// Scale.Scenario is enabled; nil otherwise. Its Truths() are the
	// ground-truth labels for everything the scenario injected.
	Scen *netsim.Scenario
}

// scenarioProbeBase offsets fabricated artifact-trace probe IDs well past
// any platform probe ID so injected traces never collide with real probes.
const scenarioProbeBase = 1 << 20

// simGeolocator builds the IPMap-like geolocation database over the
// simulator's router addresses (80%+ city-level accuracy profile) shared
// by the Lab and the daemon environment.
func simGeolocator(sim *netsim.Sim, seed int64) *LabGeo {
	var infraIPs []uint32
	for i := 1; i < len(sim.T.Routers); i++ {
		infraIPs = append(infraIPs, sim.T.Routers[i].Loopback)
		infraIPs = append(infraIPs, sim.T.Routers[i].Interfaces...)
	}
	db := geo.BuildDB(sim, infraIPs, geo.DBProfile{
		Name: "ipmap", Coverage: 0.7, ExactFrac: 0.85, NearFrac: 0.1,
	}, seed)
	return &LabGeo{L: geo.NewLocator(sim, db)}
}

// NewDaemonEnv assembles a daemon environment at the given scale. The feed
// runs for sc.Days of virtual time and then reports EOF on both sources;
// pace, when positive, is the wall-clock delay per virtual window, turning
// the feed into a real-time-like stream (0 runs as fast as the consumer
// pulls). The same scale and seed always produce the same dump, corpus,
// and feed, so a restarted daemon can resume against identical services.
func NewDaemonEnv(sc Scale, pace time.Duration) *DaemonEnv {
	sim := netsim.New(sc.SimCfg)
	plat := platform.New(sim, sc.PlatCfg)

	aliases := bordermap.OracleFunc(func(ip uint32) (int, bool) {
		r, ok := sim.T.RouterForIP(ip)
		return int(r), ok
	})

	env := &DaemonEnv{
		Sim:     sim,
		Plat:    plat,
		Mapper:  sim.Mapper(),
		Aliases: aliases,
		Geo:     simGeolocator(sim, sc.SimCfg.Seed+100),
		Rel:     LabRel{T: sim.T},
	}

	// Table dump first, then hook the live capture: Step-generated
	// updates flow into the feed queue, not the dump.
	env.Dump = sim.InitialUpdates(0)

	// Adversarial overlay: schedule the episode pack and teach the dump
	// any legitimate multi-origin baseline (anycast) before priming.
	var scen *netsim.Scenario
	if sc.Scenario != nil && sc.Scenario.Enabled() {
		seed := sc.ScenarioSeed
		if seed == 0 {
			seed = sc.SimCfg.Seed + 77
		}
		scen = netsim.NewScenario(sim, *sc.Scenario, seed, int64(sc.Days)*86400, sc.WindowSec)
		env.Dump = scen.AugmentDump(env.Dump)
		env.Scen = scen
	}

	// PeeringDB-style membership snapshot with gaps.
	snap := sim.MembershipSnapshot(0.3)
	env.IXPMembers = make(map[int][]bgp.ASN, len(snap))
	for id, list := range snap {
		env.IXPMembers[int(id)] = list
	}

	// Initial corpus: an anchoring round from the corpus probes, with two
	// observation passes feeding the unresponsive-hop patcher (Appendix
	// A). AS-loop traces are left in; Monitor.Track rejects them.
	public, corpusProbes := plat.Split(sc.SimCfg.Seed + 13)
	patcher := traceroute.NewPatcher()
	raw := plat.AnchoringRound(corpusProbes, plat.Anchors(), sim.Now())
	for _, tr := range raw {
		patcher.Observe(tr)
	}
	for _, tr := range raw {
		patcher.Patch(tr)
	}
	env.Corpus = raw

	f := &daemonFeed{
		sim:             sim,
		scen:            scen,
		public:          public,
		rng:             rand.New(rand.NewSource(sc.SimCfg.Seed + 21)),
		windowSec:       sc.WindowSec,
		publicPerWindow: sc.PublicPerWindow,
		end:             int64(sc.Days) * 86400,
		pace:            pace,
	}
	sim.OnUpdate(func(u bgp.Update) { f.updates = append(f.updates, u) })
	env.Updates = &SimUpdateFeed{f: f}
	env.Traces = &SimTraceFeed{f: f}
	return env
}

// daemonFeed generates the simulator's feed lazily: whenever either reader
// runs dry it advances the simulation by one window, capturing the BGP
// updates that Step emits and issuing that window's public traceroutes.
// Both sources stay individually time-ordered, as rrr.Pipeline requires.
type daemonFeed struct {
	mu              sync.Mutex
	sim             *netsim.Sim
	scen            *netsim.Scenario
	public          []*platform.Probe
	rng             *rand.Rand
	windowSec       int64
	publicPerWindow int
	next            int64 // next window start
	end             int64 // feed end (exclusive); <= 0 runs forever
	pace            time.Duration
	done            bool

	updates []bgp.Update
	uHead   int
	traces  []*traceroute.Traceroute
	tHead   int
}

// step advances one window (mu held). The OnUpdate hook registered at
// construction appends Step's updates to f.updates.
func (f *daemonFeed) step() {
	if f.end > 0 && f.next >= f.end {
		f.done = true
		return
	}
	if f.pace > 0 {
		time.Sleep(f.pace)
	}
	ws := f.next
	segStart := len(f.updates)
	f.sim.Step(f.windowSec)
	if f.scen != nil {
		// Scenario emissions publish through the same hook but grouped
		// after the step's benign updates; restore time order over the
		// window's combined segment (stable, so equal-time benign updates
		// stay ahead of forged ones — deterministic either way).
		f.scen.Advance(ws, ws+f.windowSec)
		seg := f.updates[segStart:]
		sort.SliceStable(seg, func(i, j int) bool { return seg[i].Time < seg[j].Time })
	}
	if f.publicPerWindow > 0 && len(f.public) > 0 {
		asns := f.sim.StubASes()
		when := ws + f.windowSec/2
		for i := 0; i < f.publicPerWindow; i++ {
			probe := f.public[f.rng.Intn(len(f.public))]
			if !probe.Active {
				continue
			}
			dstAS := asns[f.rng.Intn(len(asns))]
			dst := f.sim.T.HostIP(dstAS, 1+f.rng.Intn(20))
			f.traces = append(f.traces, f.sim.Traceroute(probe.ID, probe.IP, dst, when))
		}
	}
	if f.scen != nil {
		// Artifact traces land at ws+windowSec/2+i, at or after every
		// benign trace of the window, so appending keeps time order.
		f.traces = append(f.traces, f.scen.WindowTraces(scenarioProbeBase, ws)...)
	}
	f.next = ws + f.windowSec
}

func (f *daemonFeed) readUpdate() (bgp.Update, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.uHead >= len(f.updates) {
		if f.done {
			return bgp.Update{}, io.EOF
		}
		f.step()
	}
	u := f.updates[f.uHead]
	f.uHead++
	if f.uHead == len(f.updates) {
		f.updates, f.uHead = f.updates[:0], 0
	}
	return u, nil
}

func (f *daemonFeed) readTrace() (*traceroute.Traceroute, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.tHead >= len(f.traces) {
		if f.done {
			return nil, io.EOF
		}
		f.step()
	}
	t := f.traces[f.tHead]
	f.traces[f.tHead] = nil
	f.tHead++
	if f.tHead == len(f.traces) {
		f.traces, f.tHead = f.traces[:0], 0
	}
	return t, nil
}

// SimUpdateFeed implements bgp.UpdateSource over the shared window
// generator.
type SimUpdateFeed struct{ f *daemonFeed }

// Read returns the next BGP update, advancing the simulation as needed;
// io.EOF after the configured number of days.
func (s *SimUpdateFeed) Read() (bgp.Update, error) { return s.f.readUpdate() }

// SimTraceFeed implements the Pipeline's TraceSource over the shared
// window generator.
type SimTraceFeed struct{ f *daemonFeed }

// Read returns the next public traceroute, advancing the simulation as
// needed; io.EOF after the configured number of days.
func (s *SimTraceFeed) Read() (*traceroute.Traceroute, error) { return s.f.readTrace() }
