// Package experiments contains one runner per table and figure of the
// paper's evaluation (§5, §6, appendices), wiring the simulator, platform,
// corpus, and signal engine together and reporting the same quantities the
// paper plots. Absolute numbers differ from the paper (the substrate is a
// simulator); the runners exist to reproduce the qualitative shape of every
// result.
package experiments

import (
	"math/rand"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/core"
	"rrr/internal/corpus"
	"rrr/internal/geo"
	"rrr/internal/netsim"
	"rrr/internal/platform"
	"rrr/internal/traceroute"
)

// Scale selects experiment sizing.
type Scale struct {
	// Days of virtual time for the main runs.
	Days int
	// WindowSec is the signal-generation window.
	WindowSec int64
	// RoundSec is the corpus remeasurement cadence used for ground truth.
	RoundSec int64
	// PublicPerWindow is how many public traceroutes are issued per
	// window.
	PublicPerWindow int
	// SimCfg and PlatCfg size the substrate.
	SimCfg  netsim.Config
	PlatCfg platform.Config
	// Disabled switches off engine techniques (ablation runs).
	Disabled []core.Technique
	// Scenario, when set and enabled, overlays adversarial episodes
	// (hijacks, leaks, blackholes, trace artifacts, diurnal churn) on the
	// daemon feeds, with ground-truth labels exposed via DaemonEnv.Scen.
	Scenario *netsim.ScenarioPack
	// ScenarioSeed seeds the episode schedule independently of the
	// simulator seed; 0 derives a default from SimCfg.Seed.
	ScenarioSeed int64
	// Shards sets engine parallelism. Experiments default to 1 (the exact
	// serial path) so published numbers stay deterministic regardless of
	// the host's core count; the engine's signal stream is identical at
	// any shard count either way.
	Shards int
}

// QuickScale is small enough for unit tests and CI.
func QuickScale() Scale {
	sc := netsim.TestConfig()
	pc := platform.DefaultConfig()
	pc.NumProbes = 40
	pc.NumAnchors = 12
	return Scale{
		Days:            6,
		WindowSec:       900,
		RoundSec:        4 * 3600,
		PublicPerWindow: 80,
		SimCfg:          sc,
		PlatCfg:         pc,
	}
}

// PaperScale approximates the paper's proportions at laptop-runnable size.
func PaperScale() Scale {
	sc := netsim.DefaultConfig()
	pc := platform.DefaultConfig()
	return Scale{
		Days:            30,
		WindowSec:       900,
		RoundSec:        6 * 3600,
		PublicPerWindow: 350,
		SimCfg:          sc,
		PlatCfg:         pc,
	}
}

// Lab is the assembled experiment environment.
type Lab struct {
	Scale  Scale
	Sim    *netsim.Sim
	Plat   *platform.Platform
	Engine *core.Sharded
	Corp   *corpus.Corpus

	Aliases bordermap.AliasOracle
	Geo     *LabGeo
	Rel     LabRel

	// Public and CorpusProbes are the §5.1.1 split.
	Public       []*platform.Probe
	CorpusProbes []*platform.Probe
	Anchors      []*platform.Probe

	// OnPublicTrace, when set, receives each public traceroute instead of
	// the engine. The engine bench uses it to record one window's feed and
	// replay it per shard count, so the timed loop contains engine work
	// only (trace generation is identical across shard counts anyway —
	// same seed — but its cost is not engine cost).
	OnPublicTrace func(tr *traceroute.Traceroute)

	patcher *traceroute.Patcher
	rng     *rand.Rand
}

// LabGeo adapts geo.Locator to core.Geolocator.
type LabGeo struct {
	L *geo.Locator
}

// LocateCity implements core.Geolocator.
func (g *LabGeo) LocateCity(ip uint32, when int64) (int, bool) {
	c, _, ok := g.L.Locate(ip, when)
	return int(c), ok
}

// LabRel adapts the simulator's ground-truth relationships to
// core.RelOracle (standing in for CAIDA's AS relationship database).
type LabRel struct {
	T *netsim.Topology
}

// Rel implements core.RelOracle: a's relationship toward b.
func (r LabRel) Rel(a, b bgp.ASN) core.Rel {
	rel, ok := r.T.RelBetween(a, b)
	if !ok {
		return core.RelNone
	}
	switch rel {
	case netsim.RelCustomer:
		return core.RelCustomerOf
	case netsim.RelProvider:
		return core.RelProviderOf
	default:
		for _, lid := range r.T.LinksBetween(a, b) {
			if r.T.Links[lid].IXP != 0 {
				return core.RelPeerPublic
			}
		}
		return core.RelPeerPrivate
	}
}

// NewLab assembles the full pipeline: simulator, platform, geolocation DB,
// engine primed with an initial table dump, probe split, and the initial
// corpus from an anchoring round.
func NewLab(sc Scale) *Lab {
	sim := netsim.New(sc.SimCfg)
	plat := platform.New(sim, sc.PlatCfg)

	aliases := bordermap.OracleFunc(func(ip uint32) (int, bool) {
		r, ok := sim.T.RouterForIP(ip)
		return int(r), ok
	})

	// IPMap-like DB over all router addresses, with the accuracy profile
	// the paper reports for IPMap (80%+ city-level).
	labGeo := simGeolocator(sim, sc.SimCfg.Seed+100)
	rel := LabRel{T: sim.T}

	cfg := core.DefaultConfig()
	cfg.WindowSec = sc.WindowSec
	cfg.Disabled = sc.Disabled
	cfg.Shards = sc.Shards
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	eng := core.NewSharded(cfg, sim.Mapper(), aliases, labGeo, rel)

	// Prime the RIB with a full dump (the paper starts BGP collection two
	// days before corpus initialization) and stream subsequent updates.
	for _, u := range sim.InitialUpdates(0) {
		eng.ObserveBGP(u)
	}
	sim.OnUpdate(func(u bgp.Update) { eng.ObserveBGP(u) })

	// PeeringDB-style membership snapshot with gaps.
	snap := sim.MembershipSnapshot(0.3)
	members := make(map[int][]bgp.ASN, len(snap))
	for id, list := range snap {
		members[int(id)] = list
	}
	eng.SetInitialIXPMembership(members)

	lab := &Lab{
		Scale:   sc,
		Sim:     sim,
		Plat:    plat,
		Engine:  eng,
		Corp:    corpus.New(sim.Mapper(), aliases),
		Aliases: aliases,
		Geo:     labGeo,
		Rel:     rel,
		patcher: traceroute.NewPatcher(),
		rng:     rand.New(rand.NewSource(sc.SimCfg.Seed + 7)),
	}
	pub, corp := plat.Split(sc.SimCfg.Seed + 13)
	lab.Public, lab.CorpusProbes = pub, corp
	lab.Anchors = plat.Anchors()
	return lab
}

// BuildCorpus measures the initial corpus (corpus probes → anchors) at the
// current virtual time and registers it with the engine. Two measurement
// passes feed the unresponsive-hop patcher before processing (Appendix A).
func (l *Lab) BuildCorpus() int {
	raw := l.Plat.AnchoringRound(l.CorpusProbes, l.Anchors, l.Sim.Now())
	for _, tr := range raw {
		l.patcher.Observe(tr)
	}
	n := 0
	for _, tr := range raw {
		l.patcher.Patch(tr)
		en, err := l.Corp.Add(tr)
		if err != nil {
			continue // AS-loop traces are discarded (Appendix A)
		}
		l.Engine.AddCorpusEntry(en)
		n++
	}
	return n
}

// PublicRound issues n public traceroutes from P_public probes to randomly
// chosen destinations (excluding anchoring targets per §5.1.2 is naturally
// approximated by random host targets) and feeds them to the engine.
func (l *Lab) PublicRound(n int, when int64) {
	if len(l.Public) == 0 {
		return
	}
	asns := l.Sim.StubASes()
	for i := 0; i < n; i++ {
		probe := l.Public[l.rng.Intn(len(l.Public))]
		if !probe.Active {
			continue
		}
		dstAS := asns[l.rng.Intn(len(asns))]
		dst := l.Sim.T.HostIP(dstAS, 1+l.rng.Intn(20))
		tr := l.Sim.Traceroute(probe.ID, probe.IP, dst, when)
		if l.OnPublicTrace != nil {
			l.OnPublicTrace(tr)
		} else {
			l.Engine.ObservePublicTrace(tr)
		}
	}
}

// MeasurePair remeasures one corpus pair against ground truth (used for
// evaluation, not counted against any budget), patching unresponsive hops
// from accumulated evidence.
func (l *Lab) MeasurePair(k traceroute.Key, probeID int, when int64) (*corpus.Entry, error) {
	tr := l.Sim.Traceroute(probeID, k.Src, k.Dst, when)
	l.patcher.Observe(tr)
	l.patcher.Patch(tr)
	return l.Corp.Process(tr)
}

// ChangeClassOf compares a pair's stored entry against a fresh ground-truth
// measurement.
func (l *Lab) ChangeClassOf(k traceroute.Key, when int64) (bordermap.ChangeClass, *corpus.Entry, error) {
	en, ok := l.Corp.Get(k)
	if !ok {
		return bordermap.Unchanged, nil, nil
	}
	fresh, err := l.MeasurePair(k, en.Trace.ProbeID, when)
	if err != nil {
		return bordermap.Unchanged, nil, err
	}
	return corpus.ClassifyEntry(en, fresh), fresh, nil
}
