package experiments

import (
	"fmt"
	"os"
	"testing"
)

// TestPaperScaleRetro is the full-size retrospective run; skipped unless
// RRR_PAPER_SCALE=1 (cmd/rrrbench runs it by default).
func TestPaperScaleRetro(t *testing.T) {
	if os.Getenv("RRR_PAPER_SCALE") == "" {
		t.Skip("set RRR_PAPER_SCALE=1 for the full-size run")
	}
	sc := PaperScale()
	sc.Days = 15
	r := RunRetrospective(sc)
	fmt.Printf("corpus=%d rounds=%d changes=%d (AS %d border %d)\n",
		r.CorpusSize, r.Rounds, r.TotalChanges, r.ASChanges, r.BorderChanges)
	for _, row := range r.Table2 {
		fmt.Printf("%-22s sig=%6d prec=%.2f covAll=%.2f (u %.2f) covAS=%.2f covB=%.2f\n",
			row.Technique, row.Signals, row.Precision, row.CovAll, row.CovAllUnique, row.CovAS, row.CovBorder)
	}
	fmt.Printf("ALL: sig=%d prec=%.2f cov=%.2f covMon=%.2f\n",
		r.AllTechniques.Signals, r.AllTechniques.Precision, r.AllTechniques.CovAll, r.AllTechniques.CovAllUnique)
	fmt.Printf("fig1 border: %.3v\n", r.Fig1Border)
	fmt.Printf("fig6 prec: %.3v\n", r.Fig6Precision)
	fmt.Printf("fig6 cov: %.3v\n", r.Fig6Coverage)
	fmt.Printf("fig13 fp comms: %v\n", r.Fig13FPComms)
}
