package experiments

import (
	"math/rand"

	"rrr/internal/bordermap"
	"rrr/internal/traceroute"
)

// LiveResult carries Fig 7's two series: refresh precision under
// signal-driven versus random selection, and the fraction of changes found
// by random refreshes that signals had flagged.
type LiveResult struct {
	CorpusSize int
	Day        []float64
	// Fig 7a: precision of refresh traceroutes.
	SignalPrecision []float64
	RandomPrecision []float64
	// Fig 7b: coverage of random-discovered changes by signals.
	SignalCoverage []float64
	// Totals.
	SignalRefreshes, SignalChanged int
	RandomRefreshes, RandomChanged int
}

// RunLive executes the §5.2 live evaluation: a large topology-campaign
// corpus, a daily refresh budget spent twice — once by signal planning
// (§4.3.1), once at random — and per-day precision/coverage accounting.
func RunLive(sc Scale, dailyBudget int) *LiveResult {
	lab := NewLab(sc)
	rng := rand.New(rand.NewSource(sc.SimCfg.Seed + 77))

	// Initial corpus: a #5051-style day of campaign traceroutes, one per
	// (probe, destination) pair sampled across all prefixes.
	asns := lab.Sim.StubASes()
	seen := make(map[traceroute.Key]bool)
	for _, probe := range lab.Plat.Probes {
		for i := 0; i < 24; i++ {
			dstAS := asns[rng.Intn(len(asns))]
			dst := lab.Sim.T.HostIP(dstAS, 1+rng.Intn(8))
			tr := lab.Sim.Traceroute(probe.ID, probe.IP, dst, 0)
			if seen[tr.Key()] {
				continue
			}
			seen[tr.Key()] = true
			en, err := lab.Corp.Add(tr)
			if err != nil {
				continue
			}
			lab.Engine.AddCorpusEntry(en)
		}
	}
	keys := lab.Corp.Keys()
	res := &LiveResult{CorpusSize: len(keys)}

	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	windowsPerDay := int(86400 / sc.WindowSec)

	// Per-pair flag state since last refresh (for Fig 7b).
	flagged := make(map[traceroute.Key]bool)

	dayStats := struct {
		sigN, sigC, rndN, rndC, rndFlagged int
	}{}

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
		for _, s := range lab.Engine.CloseWindow(ws) {
			flagged[s.Key] = true
		}

		if (w+1)%windowsPerDay != 0 {
			continue
		}
		now := ws + sc.WindowSec

		// Signal-driven refreshes.
		plan := lab.Engine.RefreshPlan(dailyBudget, rng)
		for _, k := range plan {
			en, ok := lab.Corp.Get(k)
			if !ok {
				continue
			}
			fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
			if err != nil {
				continue
			}
			cls, _ := lab.Engine.EvaluateRefresh(fresh)
			dayStats.sigN++
			if cls != bordermap.Unchanged {
				dayStats.sigC++
			}
			lab.Corp.Put(fresh)
			lab.Engine.Reregister(fresh)
			flagged[k] = false
		}

		// Random refreshes (same budget).
		for i := 0; i < dailyBudget && len(keys) > 0; i++ {
			k := keys[rng.Intn(len(keys))]
			en, ok := lab.Corp.Get(k)
			if !ok {
				continue
			}
			fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
			if err != nil {
				continue
			}
			cls := bordermap.Unchanged
			if c, ok := lab.Engine.EvaluateRefresh(fresh); ok {
				cls = c
			}
			dayStats.rndN++
			if cls != bordermap.Unchanged {
				dayStats.rndC++
				if flagged[k] {
					dayStats.rndFlagged++
				}
			}
			lab.Corp.Put(fresh)
			lab.Engine.Reregister(fresh)
			flagged[k] = false
		}

		day := float64(now) / 86400
		res.Day = append(res.Day, day)
		res.SignalPrecision = append(res.SignalPrecision, safeFrac(dayStats.sigC, dayStats.sigN))
		res.RandomPrecision = append(res.RandomPrecision, safeFrac(dayStats.rndC, dayStats.rndN))
		res.SignalCoverage = append(res.SignalCoverage, safeFrac(dayStats.rndFlagged, dayStats.rndC))
		res.SignalRefreshes += dayStats.sigN
		res.SignalChanged += dayStats.sigC
		res.RandomRefreshes += dayStats.rndN
		res.RandomChanged += dayStats.rndC
		dayStats.sigN, dayStats.sigC, dayStats.rndN, dayStats.rndC, dayStats.rndFlagged = 0, 0, 0, 0, 0
	}
	return res
}

func safeFrac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
