package experiments

import (
	"rrr/internal/corpus"
	"rrr/internal/iplane"
	"rrr/internal/traceroute"
)

// IPlaneResult carries Appendix D's Fig 16: the staleness of iPlane's
// spliced paths with and without signal-driven pruning, and the fraction of
// valid splices retained under pruning.
type IPlaneResult struct {
	Day []float64
	// Fig 16a: fraction of spliced predictions that are invalid.
	InvalidUnpruned []float64
	InvalidPruned   []float64
	// Fig 16b: fraction of valid splices retained by the pruned corpus.
	RetainedValid []float64
	Predictions   int
}

// popLevel maps a corpus entry to its PoP-level path: each hop becomes an
// ⟨AS, city⟩ tuple via geolocation; hops that cannot be geolocated are
// their own PoP (Appendix D's processing).
func popLevel(lab *Lab, en *corpus.Entry, when int64) []iplane.PoP {
	var out []iplane.PoP
	var last iplane.PoP = -1
	for _, h := range en.Trace.Hops {
		if !h.Responsive() {
			continue
		}
		var p iplane.PoP
		as, okAS := lab.Sim.Mapper().ASOf(h.IP)
		city, okC := lab.Geo.LocateCity(h.IP, when)
		if okAS && okC {
			p = iplane.PoP(int64(as)<<20 | int64(city))
		} else {
			p = iplane.PoP(int64(h.IP)) | 1<<40 // own-PoP marker
		}
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

// RunIPlane executes the Appendix D integration: two parallel iPlane
// corpora (one pruned by staleness signals, one not), evaluated daily on
// spliced predictions from public probes to anchors.
func RunIPlane(sc Scale) *IPlaneResult {
	lab := NewLab(sc)
	// iPlane's corpus deliberately misses some (probe, anchor) pairs: each
	// probe measures alternating anchors, and the skipped pairs become the
	// prediction targets (as in Appendix D, where splices are built for
	// Probe→Anchor pairs the anchoring measurements did not cover).
	type target struct{ src, dst uint32 }
	var targets []target
	for pi, p := range lab.CorpusProbes {
		for ai, a := range lab.Anchors {
			if p.ID == a.ID {
				continue
			}
			if (pi+ai)%2 == 0 {
				tr := lab.Sim.Traceroute(p.ID, p.IP, a.IP, lab.Sim.Now())
				if en, err := lab.Corp.Add(tr); err == nil {
					lab.Engine.AddCorpusEntry(en)
				}
			} else {
				targets = append(targets, target{src: p.IP, dst: a.IP})
			}
		}
	}
	keys := lab.Corp.Keys()

	pruned := iplane.New()
	unpruned := iplane.New()
	for _, k := range keys {
		en, _ := lab.Corp.Get(k)
		pops := popLevel(lab, en, 0)
		pruned.Add(k, pops)
		unpruned.Add(k, pops)
	}
	if len(targets) > 400 {
		targets = targets[:400]
	}

	res := &IPlaneResult{}
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	windowsPerDay := int(86400 / sc.WindowSec)

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
		lab.Engine.CloseWindow(ws)
		// Maintain pruning from signal state (§4.3.2 re-adds on
		// revocation).
		for _, k := range keys {
			if len(lab.Engine.Active(k)) > 0 {
				pruned.Prune(k)
			} else {
				pruned.Unprune(k)
			}
		}

		if (w+1)%windowsPerDay != 0 {
			continue
		}
		now := ws + sc.WindowSec

		// Current ground-truth PoP paths of corpus pairs, for validity.
		current := make(map[traceroute.Key][]iplane.PoP, len(keys))
		for _, k := range keys {
			en, ok := lab.Corp.Get(k)
			if !ok {
				continue
			}
			fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
			if err != nil {
				continue
			}
			current[k] = popLevel(lab, fresh, now)
		}

		evalService := func(s *iplane.Service) (invalid float64, valid int, total int) {
			for _, tg := range targets {
				sp, ok := s.Predict(tg.src, tg.dst)
				if !ok {
					continue
				}
				total++
				if sp.Valid(current) {
					valid++
				}
			}
			if total > 0 {
				invalid = 1 - float64(valid)/float64(total)
			}
			return invalid, valid, total
		}
		invU, validU, totalU := evalService(unpruned)
		invP, validP, _ := evalService(pruned)

		res.Day = append(res.Day, float64(now)/86400)
		res.InvalidUnpruned = append(res.InvalidUnpruned, invU)
		res.InvalidPruned = append(res.InvalidPruned, invP)
		retained := 0.0
		if validU > 0 {
			retained = float64(validP) / float64(validU)
			if retained > 1 {
				retained = 1
			}
		}
		res.RetainedValid = append(res.RetainedValid, retained)
		res.Predictions = totalU
	}
	return res
}
