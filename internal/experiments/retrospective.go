package experiments

import (
	"sort"

	"rrr/internal/bordermap"
	"rrr/internal/core"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// Table2Row mirrors one row of the paper's Table 2.
type Table2Row struct {
	Technique string
	Signals   int
	Precision float64
	// Coverage of all changes / AS-level changes / border-level changes,
	// individual and unique.
	CovAll, CovAllUnique       float64
	CovAS, CovASUnique         float64
	CovBorder, CovBorderUnique float64
}

// RetroResult carries everything the retrospective evaluation reports:
// Fig 1, Table 2, Fig 6a/6b, and Fig 13.
type RetroResult struct {
	CorpusSize int
	Rounds     int

	// Fig 1: fraction of paths differing from their initial measurement.
	Fig1Day    []float64
	Fig1AS     []float64
	Fig1Border []float64

	// Table 2 rows per technique plus BGP/traceroute/all totals.
	Table2        []Table2Row
	BGPTotal      Table2Row
	TraceTotal    Table2Row
	AllTechniques Table2Row

	// Fig 6: daily precision and coverage.
	Fig6Day            []float64
	Fig6Precision      []float64
	Fig6Coverage       []float64
	Fig6CovMonitorable []float64

	// Fig 13: daily number of distinct communities producing false
	// positives.
	Fig13FPComms []int

	// Change census.
	TotalChanges, ASChanges, BorderChanges int
}

type sigRec struct {
	time int64
	tech core.Technique
}

// RunRetrospective executes the §5.1 retrospective evaluation.
func RunRetrospective(sc Scale) *RetroResult {
	lab := NewLab(sc)
	lab.BuildCorpus()

	keys := lab.Corp.Keys()
	res := &RetroResult{CorpusSize: len(keys)}

	// Keep the initial entries for Fig 1.
	initial := make(map[traceroute.Key]*corpus.Entry, len(keys))
	for _, k := range keys {
		en, _ := lab.Corp.Get(k)
		initial[k] = en
	}

	windowsPerRound := int(sc.RoundSec / sc.WindowSec)
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	rounds := totalWindows / windowsPerRound
	res.Rounds = rounds

	// Signal log per pair per round interval.
	sigLog := make(map[traceroute.Key][]sigRec)
	// changed[class][pair][round]
	changed := make(map[traceroute.Key]map[int]bordermap.ChangeClass)
	for _, k := range keys {
		changed[k] = make(map[int]bordermap.ChangeClass)
	}
	monitorable := make(map[traceroute.Key]bool, len(keys))
	for _, k := range keys {
		monitorable[k] = len(lab.Engine.Registrations(k)) > 0
	}

	// Daily community-FP tracking (Fig 13).
	dayFPComms := make([]map[uint32]bool, sc.Days+1)
	for i := range dayFPComms {
		dayFPComms[i] = make(map[uint32]bool)
	}

	round := 0
	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
		for _, s := range lab.Engine.CloseWindow(ws) {
			sigLog[s.Key] = append(sigLog[s.Key], sigRec{time: s.WindowStart, tech: s.Technique})
			if s.Comm != 0 {
				// Tentatively recorded; pruned to FPs below once change
				// truth for the interval is known.
				day := int(s.WindowStart / 86400)
				if day <= sc.Days {
					if !pairChangedNear(changed[s.Key], round) {
						// Provisional; refined after round evaluation.
						_ = day
					}
				}
			}
		}

		if (w+1)%windowsPerRound != 0 {
			continue
		}
		// Round boundary: remeasure every pair against ground truth.
		now := ws + sc.WindowSec
		for _, k := range keys {
			en, ok := lab.Corp.Get(k)
			if !ok {
				continue
			}
			fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
			if err != nil {
				continue
			}
			cls := corpus.ClassifyEntry(en, fresh)
			if cls != bordermap.Unchanged {
				changed[k][round] = cls
			}
			// Calibration learns from every remeasurement; communities
			// with false signals feed Fig 13.
			hadCommSignal := false
			for _, s := range lab.Engine.Active(k) {
				if s.Technique == core.TechBGPCommunity && s.Comm != 0 && cls == bordermap.Unchanged {
					day := int(now / 86400)
					if day >= len(dayFPComms) {
						day = len(dayFPComms) - 1
					}
					dayFPComms[day][uint32(s.Comm)] = true
					hadCommSignal = true
				}
			}
			_ = hadCommSignal
			lab.Engine.EvaluateRefresh(fresh)
			// Every round refreshes the corpus entry and re-registers its
			// monitors; shared traceroute series and transferred BGP
			// detectors persist, so this only re-anchors monitors whose
			// scope actually moved (leaving them anchored on a stale IP
			// path would make them scream forever).
			lab.Corp.Put(fresh)
			lab.Engine.Reregister(fresh)
		}
		// Fig 1: daily comparison against the initial corpus.
		if now%86400 < sc.RoundSec {
			var asFrac, borderFrac float64
			for _, k := range keys {
				fresh, err := lab.MeasurePair(k, initial[k].Trace.ProbeID, now)
				if err != nil {
					continue
				}
				switch corpus.ClassifyEntry(initial[k], fresh) {
				case bordermap.ASChange:
					asFrac++
					borderFrac++ // border-or-AS granularity counts both
				case bordermap.BorderChange:
					borderFrac++
				}
			}
			n := float64(len(keys))
			res.Fig1Day = append(res.Fig1Day, float64(now)/86400)
			res.Fig1AS = append(res.Fig1AS, asFrac/n)
			res.Fig1Border = append(res.Fig1Border, borderFrac/n)
		}
		round++
	}

	res.compile(sc, keys, sigLog, changed, monitorable, dayFPComms)
	return res
}

func pairChangedNear(m map[int]bordermap.ChangeClass, round int) bool {
	_, a := m[round]
	_, b := m[round-1]
	return a || b
}

// compile turns the raw logs into Table 2, Fig 6, and Fig 13.
func (res *RetroResult) compile(sc Scale, keys []traceroute.Key,
	sigLog map[traceroute.Key][]sigRec,
	changed map[traceroute.Key]map[int]bordermap.ChangeClass,
	monitorable map[traceroute.Key]bool,
	dayFPComms []map[uint32]bool) {

	roundOf := func(t int64) int { return int(t / sc.RoundSec) }
	techs := []core.Technique{
		core.TechBGPASPath, core.TechBGPCommunity, core.TechBGPBurst,
		core.TechIXPMembership, core.TechTraceSubpath, core.TechTraceBorder,
	}

	type cnt struct{ sig, tp int }
	perTech := make(map[core.Technique]*cnt)
	for _, t := range techs {
		perTech[t] = &cnt{}
	}
	allSig, allTP := 0, 0
	bgpSig, bgpTP := 0, 0
	trSig, trTP := 0, 0

	// Daily precision accounting for Fig 6a.
	nDays := sc.Days + 1
	dayTP := make([]int, nDays)
	daySig := make([]int, nDays)

	// Per (pair, round) technique coverage sets.
	type prKey struct {
		k traceroute.Key
		r int
	}
	covered := make(map[prKey]map[core.Technique]bool)

	for k, sigs := range sigLog {
		for _, s := range sigs {
			r := roundOf(s.time)
			correct := pairChangedNear2(changed[k], r)
			perTech[s.tech].sig++
			allSig++
			if s.tech.IsBGP() {
				bgpSig++
			} else {
				trSig++
			}
			if correct {
				perTech[s.tech].tp++
				allTP++
				if s.tech.IsBGP() {
					bgpTP++
				} else {
					trTP++
				}
			}
			day := int(s.time / 86400)
			if day < nDays {
				daySig[day]++
				if correct {
					dayTP[day]++
				}
			}
			for _, rr := range []int{r, r + 1} {
				pk := prKey{k: k, r: rr}
				if covered[pk] == nil {
					covered[pk] = make(map[core.Technique]bool)
				}
				covered[pk][s.tech] = true
			}
		}
	}

	// Change census + coverage.
	type covCnt struct{ all, as, border int }
	indiv := make(map[core.Technique]*covCnt)
	uniq := make(map[core.Technique]*covCnt)
	for _, t := range techs {
		indiv[t] = &covCnt{}
		uniq[t] = &covCnt{}
	}
	var anyCov covCnt
	var bgpCov, trCov covCnt
	var total, asTotal, borderTotal int
	totalMon, covMon := 0, 0

	dayChanges := make([]int, nDays)
	dayCovered := make([]int, nDays)

	for _, k := range keys {
		for r, cls := range changed[k] {
			total++
			isAS := cls == bordermap.ASChange
			if isAS {
				asTotal++
			} else {
				borderTotal++
			}
			day := (r * int(sc.RoundSec)) / 86400
			if day < nDays {
				dayChanges[day]++
			}
			set := covered[prKey{k: k, r: r}]
			if monitorable[k] {
				totalMon++
				if len(set) > 0 {
					covMon++
				}
			}
			if len(set) > 0 {
				anyCov.all++
				if isAS {
					anyCov.as++
				} else {
					anyCov.border++
				}
				if day < nDays {
					dayCovered[day]++
				}
			}
			anyBGP, anyTrace := false, false
			for t := range set {
				if t.IsBGP() {
					anyBGP = true
				} else {
					anyTrace = true
				}
			}
			if anyBGP {
				bgpCov.all++
				if isAS {
					bgpCov.as++
				} else {
					bgpCov.border++
				}
			}
			if anyTrace {
				trCov.all++
				if isAS {
					trCov.as++
				} else {
					trCov.border++
				}
			}
			for _, t := range techs {
				if !set[t] {
					continue
				}
				indiv[t].all++
				if isAS {
					indiv[t].as++
				} else {
					indiv[t].border++
				}
				if len(set) == 1 {
					uniq[t].all++
					if isAS {
						uniq[t].as++
					} else {
						uniq[t].border++
					}
				}
			}
		}
	}
	res.TotalChanges, res.ASChanges, res.BorderChanges = total, asTotal, borderTotal

	frac := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return float64(n) / float64(d)
	}
	mkRow := func(name string, sig, tp int, cov, covU *covCnt) Table2Row {
		return Table2Row{
			Technique: name, Signals: sig, Precision: frac(tp, sig),
			CovAll: frac(cov.all, total), CovAllUnique: frac(covU.all, total),
			CovAS: frac(cov.as, asTotal), CovASUnique: frac(covU.as, asTotal),
			CovBorder: frac(cov.border, borderTotal), CovBorderUnique: frac(covU.border, borderTotal),
		}
	}
	for _, t := range techs {
		res.Table2 = append(res.Table2,
			mkRow(t.String(), perTech[t].sig, perTech[t].tp, indiv[t], uniq[t]))
	}
	zero := &covCnt{}
	res.BGPTotal = mkRow("BGP Total", bgpSig, bgpTP, &bgpCov, zero)
	res.TraceTotal = mkRow("Traceroute total", trSig, trTP, &trCov, zero)
	res.AllTechniques = mkRow("All techniques", allSig, allTP, &anyCov, zero)
	if totalMon > 0 {
		res.AllTechniques.CovAllUnique = frac(covMon, totalMon) // monitorable coverage
	}

	for day := 0; day < nDays; day++ {
		if daySig[day] == 0 && dayChanges[day] == 0 {
			continue
		}
		res.Fig6Day = append(res.Fig6Day, float64(day))
		res.Fig6Precision = append(res.Fig6Precision, frac(dayTP[day], daySig[day]))
		res.Fig6Coverage = append(res.Fig6Coverage, frac(dayCovered[day], dayChanges[day]))
		res.Fig6CovMonitorable = append(res.Fig6CovMonitorable, frac(covMon, totalMon))
		res.Fig13FPComms = append(res.Fig13FPComms, len(dayFPComms[day]))
	}
	sort.SliceStable(res.Table2, func(i, j int) bool { return false }) // keep order
}

func pairChangedNear2(m map[int]bordermap.ChangeClass, r int) bool {
	if _, ok := m[r]; ok {
		return true
	}
	if _, ok := m[r+1]; ok {
		return true
	}
	if _, ok := m[r-1]; ok {
		return true
	}
	return false
}
