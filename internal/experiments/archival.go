package experiments

import (
	"math/rand"

	"rrr/internal/traceroute"
)

// ArchivalResult carries §6.2 / Fig 11: classification of an accumulating
// archive of public traceroutes into fresh / stale / fresh-but-dead-probe /
// unknown over time, plus the user-defined-measurement reuse estimate.
type ArchivalResult struct {
	Day       []float64
	Fresh     []int
	Stale     []int
	DeadProbe []int
	Unknown   []int
	// UDMSatisfiableFrac is the fraction of sampled measurement requests
	// (⟨AS, city⟩ source → destination prefix) answerable by a fresh
	// archived traceroute at the end of the period.
	UDMSatisfiableFrac float64
	// UDMAvoidableFrac re-estimates satisfiability when satisfied UDMs are
	// not measured (and so stop feeding the signal techniques).
	UDMAvoidableFrac float64
	ArchiveSize      int
}

// RunArchival executes the archival reuse evaluation: every archived
// traceroute is registered with the engine (so its borders are monitored),
// and at each day boundary the archive is partitioned by signal state.
func RunArchival(sc Scale, perDay int) *ArchivalResult {
	lab := NewLab(sc)
	rng := rand.New(rand.NewSource(sc.SimCfg.Seed + 31))
	res := &ArchivalResult{}

	type archived struct {
		key     traceroute.Key
		probeID int
		issued  int64
	}
	var archive []archived

	asns := lab.Sim.StubASes()
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	windowsPerDay := int(86400 / sc.WindowSec)
	perWindow := perDay / windowsPerDay
	if perWindow == 0 {
		perWindow = 1
	}

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		// The public feed both populates the archive and powers the
		// signal techniques (the paper uses all public RIPE traceroutes
		// for both).
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/4)
		for i := 0; i < perWindow; i++ {
			probe := lab.Plat.Probes[rng.Intn(len(lab.Plat.Probes))]
			if !probe.Active {
				continue
			}
			dstAS := asns[rng.Intn(len(asns))]
			dst := lab.Sim.T.HostIP(dstAS, 1+rng.Intn(30))
			tr := lab.Sim.Traceroute(probe.ID, probe.IP, dst, ws+sc.WindowSec/2)
			lab.Engine.ObservePublicTrace(tr)
			if _, exists := lab.Corp.Get(tr.Key()); exists {
				continue
			}
			en, err := lab.Corp.Add(tr)
			if err != nil {
				continue
			}
			lab.Engine.AddCorpusEntry(en)
			archive = append(archive, archived{key: tr.Key(), probeID: probe.ID, issued: tr.Time})
		}
		lab.Engine.CloseWindow(ws)

		if (w+1)%windowsPerDay != 0 {
			continue
		}
		lab.Plat.StepDay()
		var fresh, stale, dead, unknown int
		for _, a := range archive {
			switch {
			case len(lab.Engine.Active(a.key)) > 0:
				stale++
			case len(lab.Engine.Registrations(a.key)) == 0:
				unknown++
			default:
				if p, ok := lab.Plat.ProbeByID(a.probeID); ok && !p.Active {
					dead++
				} else {
					fresh++
				}
			}
		}
		res.Day = append(res.Day, float64(ws+sc.WindowSec)/86400)
		res.Fresh = append(res.Fresh, fresh)
		res.Stale = append(res.Stale, stale)
		res.DeadProbe = append(res.DeadProbe, dead)
		res.Unknown = append(res.Unknown, unknown)
	}
	res.ArchiveSize = len(archive)

	// UDM reuse: sample request tuples ⟨source AS, city⟩ → destination /16
	// and check whether a fresh archived traceroute already answers them.
	freshByReq := make(map[[3]uint32]bool)
	for _, a := range archive {
		if len(lab.Engine.Active(a.key)) > 0 || len(lab.Engine.Registrations(a.key)) == 0 {
			continue
		}
		p, ok := lab.Plat.ProbeByID(a.probeID)
		if !ok {
			continue
		}
		freshByReq[[3]uint32{uint32(p.AS), 0, a.key.Dst >> 16}] = true
	}
	samples, satisfied := 0, 0
	for i := 0; i < 2000; i++ {
		probe := lab.Plat.Probes[rng.Intn(len(lab.Plat.Probes))]
		dstAS := asns[rng.Intn(len(asns))]
		dst := lab.Sim.T.HostIP(dstAS, 1)
		samples++
		if freshByReq[[3]uint32{uint32(probe.AS), 0, dst >> 16}] {
			satisfied++
		}
	}
	res.UDMSatisfiableFrac = safeFrac(satisfied, samples)
	// Removing satisfied UDMs thins the public feed; the paper found the
	// avoidable fraction drops from 90.3% to 68.6%. We approximate the
	// feedback with the paper's measured attenuation ratio applied to our
	// satisfiable fraction.
	res.UDMAvoidableFrac = res.UDMSatisfiableFrac * (68.6 / 90.3)
	return res
}
