package experiments

import (
	"sort"

	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/events"
	"rrr/internal/netsim"
	"rrr/internal/traceroute"
)

// ClassScore is one event class's detection score against scenario ground
// truth.
type ClassScore struct {
	Class     string
	Truths    int // non-benign ground-truth episodes of this class
	Events    int // events the detector emitted for this class
	TP        int
	FP        int
	FN        int
	Precision float64
	Recall    float64
}

// ScenarioResult is the adversarial-accuracy report: classifier
// precision/recall per event class against the scenario's ground-truth
// labels, plus the staleness engine's verdict accuracy with the pack off
// (benign) and on (adversarial). Degradation is how much verdict accuracy
// the adversarial churn costs.
type ScenarioResult struct {
	CorpusSize int
	TruthCount int // non-benign ground-truth episodes
	EventCount int

	Classes   []ClassScore
	Precision float64 // micro-averaged over all classes
	Recall    float64

	BenignStaleAcc      float64
	AdversarialStaleAcc float64
	Degradation         float64
}

// scenarioPass is one full run's raw outputs.
type scenarioPass struct {
	corpusSize int
	events     []events.Event
	truths     []events.Truth
	staleAcc   float64
}

// RunScenarioAccuracy runs the scale twice — pack off, then pack on with
// the given scenario seed — and scores both the event classifiers and the
// staleness engine against ground truth. The benign substream is identical
// across the two runs (scenarios never consume the simulator's RNG), so
// the accuracy delta isolates the adversarial injections.
func RunScenarioAccuracy(sc Scale, pack netsim.ScenarioPack, seed int64) *ScenarioResult {
	benign := runScenarioPass(sc, nil, seed)
	adv := runScenarioPass(sc, &pack, seed)

	res := &ScenarioResult{
		CorpusSize:          adv.corpusSize,
		EventCount:          len(adv.events),
		BenignStaleAcc:      benign.staleAcc,
		AdversarialStaleAcc: adv.staleAcc,
		Degradation:         benign.staleAcc - adv.staleAcc,
	}
	res.Classes, res.Precision, res.Recall = scoreEvents(adv.events, adv.truths, sc.WindowSec)
	for _, t := range adv.truths {
		if !t.Benign {
			res.TruthCount++
		}
	}
	return res
}

// runScenarioPass drives one full Lab run with an optional scenario pack,
// feeding the event detector the same record stream the engine sees and
// remeasuring every corpus pair each round for staleness ground truth.
func runScenarioPass(sc Scale, pack *netsim.ScenarioPack, seed int64) *scenarioPass {
	lab := NewLab(sc)

	det := events.NewDetector(events.Config{WindowSec: sc.WindowSec})
	for _, u := range lab.Sim.InitialUpdates(0) {
		det.Prime(u)
	}

	var scen *netsim.Scenario
	if pack != nil && pack.Enabled() {
		scen = netsim.NewScenario(lab.Sim, *pack, seed, int64(sc.Days)*86400, sc.WindowSec)
		// Anycast secondary origins are legitimate baseline: both the
		// engine's RIB and the detector's origin sets learn them upfront.
		for _, u := range scen.AugmentDump(nil) {
			lab.Engine.ObserveBGP(u)
			det.Prime(u)
		}
	}
	lab.Sim.OnUpdate(det.TapUpdate)
	lab.OnPublicTrace = func(tr *traceroute.Traceroute) {
		det.TapTrace(tr)
		lab.Engine.ObservePublicTrace(tr)
	}

	lab.BuildCorpus()
	keys := lab.Corp.Keys()

	windowsPerRound := int(sc.RoundSec / sc.WindowSec)
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)

	sigTimes := make(map[traceroute.Key][]int64)
	verdictRight, verdictTotal := 0, 0

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		if scen != nil {
			scen.Advance(ws, ws+sc.WindowSec)
		}
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
		if scen != nil {
			for _, tr := range scen.WindowTraces(scenarioProbeBase, ws) {
				det.TapTrace(tr)
				lab.Engine.ObservePublicTrace(tr)
			}
		}
		for _, s := range lab.Engine.CloseWindow(ws) {
			sigTimes[s.Key] = append(sigTimes[s.Key], s.WindowStart)
		}
		det.TapWindowClose(ws)

		if (w+1)%windowsPerRound != 0 {
			continue
		}
		// Round boundary: remeasure every pair against ground truth and
		// score the engine's verdict — "signaled during this interval"
		// against "path actually changed since last round".
		now := ws + sc.WindowSec
		intervalStart := now - sc.RoundSec
		for _, k := range keys {
			en, ok := lab.Corp.Get(k)
			if !ok {
				continue
			}
			fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
			if err != nil {
				continue
			}
			changed := corpus.ClassifyEntry(en, fresh) != bordermap.Unchanged
			verdict := false
			for _, t := range sigTimes[k] {
				if t >= intervalStart && t < now {
					verdict = true
					break
				}
			}
			if verdict == changed {
				verdictRight++
			}
			verdictTotal++
			lab.Engine.EvaluateRefresh(fresh)
			lab.Corp.Put(fresh)
			lab.Engine.Reregister(fresh)
		}
	}

	out := &scenarioPass{
		corpusSize: len(keys),
		events:     det.Events(),
	}
	if scen != nil {
		out.truths = scen.Truths()
	}
	if verdictTotal > 0 {
		out.staleAcc = float64(verdictRight) / float64(verdictTotal)
	}
	return out
}

// scoreEvents matches detector emissions against ground truth per class.
// An event matching any non-benign truth is a true positive; one matching
// nothing, or only benign labels (legitimate anycast MOAS, a self-healed
// leak), is a false positive. Non-benign truths no event matched are false
// negatives.
func scoreEvents(evs []events.Event, truths []events.Truth, windowSec int64) ([]ClassScore, float64, float64) {
	type tally struct{ tp, fp, fn, truths, events int }
	byClass := make(map[events.Class]*tally)
	get := func(c events.Class) *tally {
		t := byClass[c]
		if t == nil {
			t = &tally{}
			byClass[c] = t
		}
		return t
	}
	matched := make([]bool, len(truths))
	for _, ev := range evs {
		t := get(ev.Class)
		t.events++
		hit := false
		for i := range truths {
			if !truths[i].Matches(ev, windowSec) {
				continue
			}
			if truths[i].Benign {
				continue
			}
			hit = true
			matched[i] = true
		}
		if hit {
			t.tp++
		} else {
			t.fp++
		}
	}
	for i := range truths {
		if truths[i].Benign {
			continue
		}
		t := get(truths[i].Class)
		t.truths++
		if !matched[i] {
			t.fn++
		}
	}

	var classes []events.Class
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	var out []ClassScore
	sumTP, sumFP, sumFN := 0, 0, 0
	for _, c := range classes {
		t := byClass[c]
		cs := ClassScore{
			Class: c.String(), Truths: t.truths, Events: t.events,
			TP: t.tp, FP: t.fp, FN: t.fn,
		}
		if t.tp+t.fp > 0 {
			cs.Precision = float64(t.tp) / float64(t.tp+t.fp)
		}
		if t.tp+t.fn > 0 {
			cs.Recall = float64(t.tp) / float64(t.tp+t.fn)
		}
		out = append(out, cs)
		sumTP += t.tp
		sumFP += t.fp
		sumFN += t.fn
	}
	prec, rec := 0.0, 0.0
	if sumTP+sumFP > 0 {
		prec = float64(sumTP) / float64(sumTP+sumFP)
	}
	if sumTP+sumFN > 0 {
		rec = float64(sumTP) / float64(sumTP+sumFN)
	}
	return out, prec, rec
}
