package experiments

import (
	"io"
	"testing"
)

// daemonTestScale keeps the feed small: a few windows, a handful of public
// traces per window.
func daemonTestScale() Scale {
	sc := QuickScale()
	sc.Days = 1
	sc.PublicPerWindow = 5
	return sc
}

func TestDaemonEnvFeeds(t *testing.T) {
	sc := daemonTestScale()
	env := NewDaemonEnv(sc, 0)

	if len(env.Dump) == 0 {
		t.Fatal("no initial table dump")
	}
	if len(env.Corpus) == 0 {
		t.Fatal("empty corpus")
	}
	for _, u := range env.Dump {
		if u.Time != 0 {
			t.Fatalf("dump update at t=%d; table dump must precede the stream", u.Time)
		}
	}

	end := int64(sc.Days) * 86400
	// Drain the BGP feed: time-ordered, bounded by the configured days,
	// then EOF — and EOF is sticky.
	var prev int64
	nUpd := 0
	for {
		u, err := env.Updates.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if u.Time < prev {
			t.Fatalf("update feed went backwards: %d after %d", u.Time, prev)
		}
		if u.Time >= end {
			t.Fatalf("update at t=%d past feed end %d", u.Time, end)
		}
		prev = u.Time
		nUpd++
	}
	if nUpd == 0 {
		t.Fatal("update feed produced nothing")
	}
	if _, err := env.Updates.Read(); err != io.EOF {
		t.Fatalf("second read after EOF = %v", err)
	}

	// The trace feed shares the generator; draining it after the updates
	// still yields this run's traces (they were queued window by window).
	prev = 0
	nTr := 0
	for {
		tr, err := env.Traces.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tr.Time < prev {
			t.Fatalf("trace feed went backwards: %d after %d", tr.Time, prev)
		}
		if tr.Time >= end {
			t.Fatalf("trace at t=%d past feed end %d", tr.Time, end)
		}
		prev = tr.Time
		nTr++
	}
	if nTr == 0 {
		t.Fatal("trace feed produced nothing")
	}
}

// TestDaemonEnvDeterministic: the same scale and seed reproduce the same
// dump, corpus, and feed — the property snapshot restore relies on.
func TestDaemonEnvDeterministic(t *testing.T) {
	sc := daemonTestScale()
	a, b := NewDaemonEnv(sc, 0), NewDaemonEnv(sc, 0)
	if len(a.Dump) != len(b.Dump) || len(a.Corpus) != len(b.Corpus) {
		t.Fatalf("env sizes differ: dump %d/%d corpus %d/%d",
			len(a.Dump), len(b.Dump), len(a.Corpus), len(b.Corpus))
	}
	for i := range a.Corpus {
		if a.Corpus[i].Key() != b.Corpus[i].Key() {
			t.Fatalf("corpus[%d] keys differ: %v vs %v", i, a.Corpus[i].Key(), b.Corpus[i].Key())
		}
	}
	for i := 0; i < 50; i++ {
		ua, errA := a.Updates.Read()
		ub, errB := b.Updates.Read()
		if (errA != nil) != (errB != nil) {
			t.Fatalf("feed errors diverge at %d: %v vs %v", i, errA, errB)
		}
		if errA != nil {
			break
		}
		if ua.Time != ub.Time || ua.PeerIP != ub.PeerIP || ua.Prefix != ub.Prefix {
			t.Fatalf("update %d differs: %+v vs %+v", i, ua, ub)
		}
	}
}
