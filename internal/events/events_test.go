package events

import (
	"reflect"
	"sort"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

func pfx(s string) trie.Prefix {
	p, err := trie.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func annc(peer uint32, p trie.Prefix, path ...bgp.ASN) bgp.Update {
	return bgp.Update{PeerIP: peer, Type: bgp.Announce, Prefix: p, ASPath: bgp.Path(path)}
}

func wdraw(peer uint32, p trie.Prefix) bgp.Update {
	return bgp.Update{PeerIP: peer, Type: bgp.Withdraw, Prefix: p}
}

func TestClassNamesRoundTrip(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		name := c.String()
		if name == "unknown" {
			t.Fatalf("class %d has no name", c)
		}
		back, err := ParseClass(name)
		if err != nil || back != c {
			t.Fatalf("ParseClass(%q) = %v, %v; want %v", name, back, err, c)
		}
	}
	if _, err := ParseClass("no-such-class"); err == nil {
		t.Fatal("ParseClass accepted an unknown name")
	}
}

func TestTruthCodecRoundTrip(t *testing.T) {
	truths := []Truth{
		{Class: HijackOrigin, Start: 86400, End: 88200, Prefix: pfx("16.1.0.0/16"), AS: 64501, Detail: "full origin hijack"},
		{Class: HijackMOAS, Start: 0, End: 345600, Prefix: pfx("16.2.0.0/16"), AS: 64502, Benign: true, Detail: "stable anycast baseline"},
		{Class: RouteLeak, Start: 90000, End: 91350, Prefix: pfx("16.3.0.0/16"), AS: 64503},
		{Class: TraceLoop, Start: 104400, End: 105300, Key: traceroute.Key{Src: 0x10131234, Dst: 0x10251234}, Detail: "fabricated per-flow artifact"},
		{Class: Diurnal, Start: 216300, End: 345600, Prefix: pfx("16.4.0.0/16")},
	}
	enc := EncodeTruths(truths)
	dec, err := DecodeTruths(enc)
	if err != nil {
		t.Fatalf("DecodeTruths: %v", err)
	}
	if !reflect.DeepEqual(truths, dec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, truths)
	}

	// Empty slice round-trips too.
	dec, err = DecodeTruths(EncodeTruths(nil))
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty round trip: %v, %v", dec, err)
	}
}

func TestTruthCodecRejectsMalformed(t *testing.T) {
	enc := EncodeTruths([]Truth{{Class: Blackhole, Start: 1, End: 2, Prefix: pfx("10.0.0.0/8"), AS: 7}})
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte("XXGT"), enc[4:]...),
		"truncated":   enc[:len(enc)-3],
		"trailing":    append(append([]byte{}, enc...), 0xff),
		"only header": enc[:5],
		"bogus count": {'R', 'R', 'G', 'T', 1, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"bad version": append([]byte("RRGT\x09"), enc[5:]...),
	}
	for name, data := range cases {
		if _, err := DecodeTruths(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestEventLessCanonicalOrder(t *testing.T) {
	evs := []Event{
		{WindowStart: 900, Class: Blackhole, Prefix: pfx("10.0.0.0/16")},
		{WindowStart: 0, Class: RouteLeak, Prefix: pfx("10.1.0.0/16"), AS: 2},
		{WindowStart: 0, Class: RouteLeak, Prefix: pfx("10.1.0.0/16"), AS: 1},
		{WindowStart: 0, Class: HijackOrigin, Prefix: pfx("10.9.0.0/16")},
		{WindowStart: 0, Class: TraceLoop, Key: traceroute.Key{Src: 5, Dst: 9}},
		{WindowStart: 0, Class: TraceLoop, Key: traceroute.Key{Src: 5, Dst: 8}},
	}
	sort.Slice(evs, func(i, j int) bool { return EventLess(evs[i], evs[j]) })
	wantFirst := Event{WindowStart: 0, Class: HijackOrigin, Prefix: pfx("10.9.0.0/16")}
	if evs[0] != wantFirst {
		t.Fatalf("first after sort = %+v, want %+v", evs[0], wantFirst)
	}
	if evs[len(evs)-1].WindowStart != 900 {
		t.Fatalf("last after sort should be the later window, got %+v", evs[len(evs)-1])
	}
	if evs[1].AS != 1 || evs[2].AS != 2 {
		t.Fatalf("route-leak AS tiebreak wrong: %+v then %+v", evs[1], evs[2])
	}
	if evs[3].Key.Dst != 8 || evs[4].Key.Dst != 9 {
		t.Fatalf("trace key tiebreak wrong: %+v then %+v", evs[3], evs[4])
	}
}

// classifierCase drives one expected-label scenario through a fresh
// detector: a priming dump establishing the baseline, one window of
// streamed updates, and the exact set of classes the close must emit.
type classifierCase struct {
	name   string
	prime  []bgp.Update
	stream []bgp.Update
	want   []Class
}

func TestClassifierExpectedLabels(t *testing.T) {
	// Topology shorthand: VP peers 0xA1/0xA2 behind AS 100, transit AS
	// 200, legitimate origins 300 (prefix P) and 301 (anycast second
	// origin of prefix Q), stub 400 (attacker / leaker).
	P := pfx("20.1.0.0/16")
	Q := pfx("20.2.0.0/16")
	sub := pfx("20.1.64.0/18")

	cases := []classifierCase{
		{
			name: "legitimate anycast MOAS stays silent",
			prime: []bgp.Update{
				annc(0xA1, Q, 100, 200, 300),
				annc(0xA2, Q, 100, 200, 301), // anycast: both origins in baseline
			},
			stream: []bgp.Update{
				annc(0xA1, Q, 100, 200, 301), // baseline origin reappears
			},
			want: nil,
		},
		{
			name: "foreign origin alongside baseline is MOAS hijack",
			prime: []bgp.Update{
				annc(0xA1, P, 100, 200, 300),
				annc(0xA2, P, 100, 200, 300),
			},
			stream: []bgp.Update{
				annc(0xA1, P, 100, 200, 400), // 0xA2 still routes to 300
			},
			want: []Class{HijackMOAS},
		},
		{
			name: "baseline origin fully displaced is origin hijack",
			prime: []bgp.Update{
				annc(0xA1, P, 100, 200, 300),
				annc(0xA2, P, 100, 200, 300),
			},
			stream: []bgp.Update{
				annc(0xA1, P, 100, 200, 400),
				annc(0xA2, P, 100, 200, 400),
			},
			want: []Class{HijackOrigin},
		},
		{
			name: "foreign more-specific is sub-prefix hijack",
			prime: []bgp.Update{
				annc(0xA1, P, 100, 200, 300),
			},
			stream: []bgp.Update{
				annc(0xA1, sub, 100, 200, 400),
			},
			want: []Class{HijackSubprefix},
		},
		{
			name: "covering origin's own more-specific stays silent",
			prime: []bgp.Update{
				annc(0xA1, P, 100, 200, 300),
			},
			stream: []bgp.Update{
				annc(0xA1, sub, 100, 200, 300),
			},
			want: nil,
		},
		{
			name: "leak routed at window close is flagged",
			prime: []bgp.Update{
				annc(0xA1, P, 100, 200, 300),
				annc(0xA2, P, 100, 200, 300),
			},
			stream: []bgp.Update{
				annc(0xA1, P, 100, 400, 200, 300), // stub 400 in transit position
			},
			want: []Class{RouteLeak},
		},
		{
			name: "leak healing within the window stays silent",
			prime: []bgp.Update{
				annc(0xA1, P, 100, 200, 300),
				annc(0xA2, P, 100, 200, 300),
			},
			stream: []bgp.Update{
				annc(0xA1, P, 100, 400, 200, 300),
				annc(0xA1, P, 100, 200, 300), // legitimate route restored
			},
			want: nil,
		},
		{
			name: "leak withdrawn within the window stays silent",
			prime: []bgp.Update{
				annc(0xA1, P, 100, 200, 300),
			},
			stream: []bgp.Update{
				annc(0xA1, P, 100, 400, 200, 300),
				wdraw(0xA1, P),
			},
			want: nil,
		},
		{
			name: "blackhole community on an already-churning pair still fires",
			prime: []bgp.Update{
				annc(0xA1, P, 100, 200, 300),
				annc(0xA2, P, 100, 200, 300),
			},
			stream: []bgp.Update{
				// The prefix is mid-hijack (stale from the staleness
				// engine's point of view) when the blackhole arrives; both
				// classifications must surface independently.
				annc(0xA1, P, 100, 200, 400),
				{PeerIP: 0xA2, Type: bgp.Announce, Prefix: P,
					ASPath:      bgp.Path{100, 200, 300},
					Communities: []bgp.Community{bgp.MakeCommunity(64500, 1), BlackholeCommunity}},
			},
			want: []Class{HijackMOAS, Blackhole},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDetector(Config{WindowSec: 900})
			for _, u := range tc.prime {
				d.Prime(u)
			}
			for _, u := range tc.stream {
				d.TapUpdate(u)
			}
			d.TapWindowClose(900)
			var got []Class
			for _, ev := range d.Events() {
				got = append(got, ev.Class)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := append([]Class(nil), tc.want...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("emitted classes %v, want %v (events: %+v)", got, want, d.Events())
			}
		})
	}
}

func TestTraceArtifactClassifiers(t *testing.T) {
	hop := func(ip uint32, ttl int) traceroute.Hop { return traceroute.Hop{IP: ip, TTL: ttl, RTT: 10} }
	mk := func(src, dst uint32, ips ...uint32) *traceroute.Traceroute {
		tr := &traceroute.Traceroute{Src: src, Dst: dst, ProbeID: 1}
		for i, ip := range ips {
			tr.Hops = append(tr.Hops, hop(ip, i+1))
		}
		return tr
	}

	d := NewDetector(Config{WindowSec: 900})
	// Adjacent repeat -> loop.
	d.TapTrace(mk(1, 2, 10, 11, 11, 12))
	// Non-adjacent repeat -> cycle.
	d.TapTrace(mk(3, 4, 20, 21, 22, 21))
	// Two divergent same-pair clean traces -> diamond.
	d.TapTrace(mk(5, 6, 30, 31, 32))
	d.TapTrace(mk(5, 6, 30, 33, 32))
	// A single clean trace is not a diamond.
	d.TapTrace(mk(7, 8, 40, 41, 42))
	d.TapWindowClose(900)

	got := map[Class]traceroute.Key{}
	for _, ev := range d.Events() {
		got[ev.Class] = ev.Key
	}
	if len(got) != 3 {
		t.Fatalf("expected exactly loop+cycle+diamond, got %+v", d.Events())
	}
	if got[TraceLoop] != (traceroute.Key{Src: 1, Dst: 2}) {
		t.Fatalf("loop key = %v", got[TraceLoop])
	}
	if got[TraceCycle] != (traceroute.Key{Src: 3, Dst: 4}) {
		t.Fatalf("cycle key = %v", got[TraceCycle])
	}
	if got[TraceDiamond] != (traceroute.Key{Src: 5, Dst: 6}) {
		t.Fatalf("diamond key = %v", got[TraceDiamond])
	}
}

func TestDiurnalClassifier(t *testing.T) {
	const day = 86400
	d := NewDetector(Config{WindowSec: 900, DiurnalDays: 3, DiurnalSparseMax: 3})
	P := pfx("30.0.0.0/16")
	d.Prime(annc(0xA1, P, 100, 200, 300))

	// Same daily slot, three consecutive days; quiet otherwise.
	var lastWS int64
	for dayN := int64(0); dayN < 3; dayN++ {
		ws := dayN*day + 43200
		d.TapUpdate(annc(0xA1, P, 100, 200, 300))
		d.TapWindowClose(ws)
		lastWS = ws
	}
	var diurnal []Event
	for _, ev := range d.Events() {
		if ev.Class == Diurnal {
			diurnal = append(diurnal, ev)
		}
	}
	if len(diurnal) != 1 || diurnal[0].WindowStart != lastWS || diurnal[0].Prefix != P {
		t.Fatalf("diurnal events = %+v, want one at ws=%d for %v", diurnal, lastWS, P)
	}
}

func TestFilteredSelectsClassAndRange(t *testing.T) {
	d := NewDetector(Config{WindowSec: 900})
	P := pfx("20.1.0.0/16")
	d.Prime(annc(0xA1, P, 100, 200, 300))
	d.Prime(annc(0xA2, P, 100, 200, 300))
	// Window 1: MOAS hijack. Window 2: blackhole.
	d.TapUpdate(annc(0xA1, P, 100, 200, 400))
	d.TapWindowClose(900)
	d.TapUpdate(bgp.Update{PeerIP: 0xA2, Type: bgp.Announce, Prefix: P,
		ASPath: bgp.Path{100, 200, 300}, Communities: []bgp.Community{BlackholeCommunity}})
	d.TapWindowClose(1800)

	if n := len(d.Events()); n < 2 {
		t.Fatalf("expected at least 2 events, got %d", n)
	}
	only := d.Filtered(Filter{Classes: []Class{Blackhole}})
	if len(only) != 1 || only[0].Class != Blackhole {
		t.Fatalf("class filter: %+v", only)
	}
	ranged := d.Filtered(Filter{FromWindow: 1800})
	for _, ev := range ranged {
		if ev.WindowStart < 1800 {
			t.Fatalf("range filter leaked %+v", ev)
		}
	}
	if len(ranged) == 0 {
		t.Fatal("range filter dropped everything")
	}
}

func TestTruthMatchesWindowPadding(t *testing.T) {
	tr := Truth{Class: Blackhole, Start: 9000, End: 9900, Prefix: pfx("10.0.0.0/8"), AS: 7}
	ev := Event{Class: Blackhole, Prefix: pfx("10.0.0.0/8"), AS: 7}
	for _, tc := range []struct {
		ws   int64
		want bool
	}{
		{ws: 9000, want: true},
		{ws: 8100, want: true},  // one window early (detection at close)
		{ws: 10800, want: true}, // one window late
		{ws: 6300, want: false},
		{ws: 12600, want: false},
	} {
		ev.WindowStart = tc.ws
		if got := tr.Matches(ev, 900); got != tc.want {
			t.Errorf("ws=%d: Matches=%v want %v", tc.ws, got, tc.want)
		}
	}
	// Wrong attribute never matches.
	ev.WindowStart = 9000
	ev.AS = 8
	if tr.Matches(ev, 900) {
		t.Error("AS mismatch matched")
	}
}
