package events

import (
	"encoding/binary"
	"fmt"

	"rrr/internal/bgp"
)

// Ground-truth label codec: a compact binary form for shipping scenario
// labels alongside generated streams (and for proving label determinism —
// two runs of the same seeded pack must encode byte-identically). The
// format is length-prefixed and versioned; DecodeTruths treats its input
// as untrusted bytes and is covered by FuzzTruthCodec.
//
//	"RRGT" | version(1) | count(uvarint) | record*
//	record: class(1) | start(varint) | end(varint) | prefixAddr(4BE) |
//	        prefixLen(1) | as(4BE) | keySrc(4BE) | keyDst(4BE) |
//	        benign(1) | detailLen(uvarint) | detail
const (
	truthMagic   = "RRGT"
	truthVersion = 1

	// maxTruthDetail bounds one label's detail string so a corrupt length
	// prefix cannot balloon a decode allocation.
	maxTruthDetail = 1 << 12
	// maxTruthCount bounds the declared record count before any record is
	// read, for the same reason.
	maxTruthCount = 1 << 22
)

// EncodeTruths serializes labels in order. Same labels, same bytes.
func EncodeTruths(truths []Truth) []byte {
	out := make([]byte, 0, 16+len(truths)*24)
	out = append(out, truthMagic...)
	out = append(out, truthVersion)
	out = binary.AppendUvarint(out, uint64(len(truths)))
	for _, t := range truths {
		out = append(out, byte(t.Class))
		out = binary.AppendVarint(out, t.Start)
		out = binary.AppendVarint(out, t.End)
		out = binary.BigEndian.AppendUint32(out, t.Prefix.Addr)
		out = append(out, t.Prefix.Len)
		out = binary.BigEndian.AppendUint32(out, uint32(t.AS))
		out = binary.BigEndian.AppendUint32(out, t.Key.Src)
		out = binary.BigEndian.AppendUint32(out, t.Key.Dst)
		if t.Benign {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = binary.AppendUvarint(out, uint64(len(t.Detail)))
		out = append(out, t.Detail...)
	}
	return out
}

// truthReader is a bounds-checked cursor over untrusted bytes.
type truthReader struct {
	data []byte
	pos  int
}

func (r *truthReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) || r.pos+n < r.pos {
		return nil, fmt.Errorf("events: truncated label record at offset %d", r.pos)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *truthReader) byte1() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *truthReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *truthReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("events: bad uvarint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *truthReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("events: bad varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// DecodeTruths parses an EncodeTruths blob, rejecting malformed input with
// an error (never a panic).
func DecodeTruths(data []byte) ([]Truth, error) {
	r := &truthReader{data: data}
	magic, err := r.bytes(len(truthMagic))
	if err != nil || string(magic) != truthMagic {
		return nil, fmt.Errorf("events: bad label magic")
	}
	ver, err := r.byte1()
	if err != nil {
		return nil, err
	}
	if ver != truthVersion {
		return nil, fmt.Errorf("events: unsupported label version %d", ver)
	}
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxTruthCount {
		return nil, fmt.Errorf("events: label count %d exceeds limit", count)
	}
	out := make([]Truth, 0, min(int(count), 1024))
	for i := uint64(0); i < count; i++ {
		var t Truth
		cls, err := r.byte1()
		if err != nil {
			return nil, err
		}
		if Class(cls) >= numClasses {
			return nil, fmt.Errorf("events: unknown class byte %d in record %d", cls, i)
		}
		t.Class = Class(cls)
		if t.Start, err = r.varint(); err != nil {
			return nil, err
		}
		if t.End, err = r.varint(); err != nil {
			return nil, err
		}
		if t.Prefix.Addr, err = r.u32(); err != nil {
			return nil, err
		}
		plen, err := r.byte1()
		if err != nil {
			return nil, err
		}
		if plen > 32 {
			return nil, fmt.Errorf("events: prefix length %d out of range in record %d", plen, i)
		}
		t.Prefix.Len = plen
		as, err := r.u32()
		if err != nil {
			return nil, err
		}
		t.AS = bgp.ASN(as)
		if t.Key.Src, err = r.u32(); err != nil {
			return nil, err
		}
		if t.Key.Dst, err = r.u32(); err != nil {
			return nil, err
		}
		benign, err := r.byte1()
		if err != nil {
			return nil, err
		}
		if benign > 1 {
			return nil, fmt.Errorf("events: bad benign byte %d in record %d", benign, i)
		}
		t.Benign = benign == 1
		dlen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if dlen > maxTruthDetail {
			return nil, fmt.Errorf("events: detail length %d exceeds limit in record %d", dlen, i)
		}
		detail, err := r.bytes(int(dlen))
		if err != nil {
			return nil, err
		}
		t.Detail = string(detail)
		out = append(out, t)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("events: %d trailing bytes after %d records", len(data)-r.pos, count)
	}
	return out, nil
}
