package events

import (
	"math"
	"reflect"
	"testing"

	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// scenarioTruthSeeds mirrors the label sets a FullPack scenario emits, so
// the fuzzer starts from realistic encodings rather than random bytes.
func scenarioTruthSeeds() [][]byte {
	packs := [][]Truth{
		{
			{Class: HijackOrigin, Start: 86700, End: 88500, Prefix: trie.MakePrefix(0x10130000, 16), AS: 64512},
			{Class: HijackMOAS, Start: 115500, End: 117300, Prefix: trie.MakePrefix(0x10220000, 16), AS: 64513},
			{Class: HijackSubprefix, Start: 144300, End: 146100, Prefix: trie.MakePrefix(0x10310000, 18), AS: 64514},
		},
		{
			{Class: RouteLeak, Start: 97500, End: 98850, Prefix: trie.MakePrefix(0x10440000, 16), AS: 64515},
			{Class: RouteLeak, Start: 126300, End: 126525, Prefix: trie.MakePrefix(0x10450000, 16), AS: 64516, Benign: true, Detail: "self-healed within one window"},
			{Class: Blackhole, Start: 155100, End: 156000, Prefix: trie.MakePrefix(0x10460000, 16), AS: 64517},
		},
		{
			{Class: TraceLoop, Start: 104400, End: 105300, Key: traceroute.Key{Src: 0x1013c028, Dst: 0x1025c050}},
			{Class: TraceCycle, Start: 133200, End: 134100, Key: traceroute.Key{Src: 0x101ac029, Dst: 0x1027c051}},
			{Class: TraceDiamond, Start: 162000, End: 162900, Key: traceroute.Key{Src: 0x1016c02a, Dst: 0x1021c052}},
			{Class: Diurnal, Start: 216300, End: 345600, Prefix: trie.MakePrefix(0x10340000, 16)},
			{Class: HijackMOAS, Start: 0, End: 345600, Prefix: trie.MakePrefix(0x10120000, 16), AS: 64518, Benign: true, Detail: "stable anycast baseline"},
		},
		nil,
	}
	var out [][]byte
	for _, truths := range packs {
		out = append(out, EncodeTruths(truths))
	}
	return out
}

// FuzzTruthCodec asserts DecodeTruths never panics on arbitrary bytes and
// that whatever it accepts re-encodes and re-decodes to the same labels.
func FuzzTruthCodec(f *testing.F) {
	for _, seed := range scenarioTruthSeeds() {
		f.Add(seed)
	}
	// Historic trouble spots: truncated header, absurd count varints,
	// trailing garbage, wrong magic/version.
	f.Add([]byte("RRGT"))
	f.Add([]byte("RRGT\x01"))
	f.Add([]byte{'R', 'R', 'G', 'T', 1, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(append(EncodeTruths([]Truth{{Class: Blackhole, Start: 1, End: 2}}), 0x00))
	f.Add([]byte("XXGT\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		truths, err := DecodeTruths(data)
		if err != nil {
			return
		}
		if math.MaxInt32 < len(truths) {
			t.Fatalf("implausible decode length %d", len(truths))
		}
		re := EncodeTruths(truths)
		back, err := DecodeTruths(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded labels failed: %v", err)
		}
		if len(truths) != len(back) || (len(truths) > 0 && !reflect.DeepEqual(truths, back)) {
			t.Fatalf("codec not idempotent:\n first %+v\nsecond %+v", truths, back)
		}
	})
}
