package events

import (
	"sort"
	"sync"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// Config tunes the Detector.
type Config struct {
	// WindowSec is the emission window length (must match the engine's;
	// 900 if zero). Diurnal slot arithmetic requires 86400 % WindowSec == 0,
	// which every deployed window length satisfies.
	WindowSec int64
	// DiurnalDays is how many consecutive days a prefix must churn in the
	// same daily slot before it is classified diurnal (3 if zero).
	DiurnalDays int
	// DiurnalSparseMax caps how many *other* active windows the prefix may
	// have had in the trailing day: periodicity means the churn is
	// concentrated in the repeating slot, not constant (3 if zero).
	DiurnalSparseMax int
	// OnEvent, when set, receives every emitted event in canonical order
	// at window close, on the tapping goroutine. Wire it to the serving
	// hub's event publisher.
	OnEvent func(Event)
}

// BlackholeCommunity is RFC 7999's well-known BLACKHOLE community.
var BlackholeCommunity = bgp.MakeCommunity(65535, 666)

// routeKey identifies one vantage point's route to one prefix.
type routeKey struct {
	peer   uint32
	prefix trie.Prefix
}

// routeVal is the current state of one (vp, prefix) route.
type routeVal struct {
	origin bgp.ASN
	leaker bgp.ASN // non-transit AS observed mid-path; 0 when clean
}

// Detector consumes the ingested record stream (via the Pipeline's record
// tap) and classifies routing events against a baseline learned from the
// priming table dump. All Tap* methods are called on the pipeline's merge
// goroutine; Events/Filtered may be called concurrently from HTTP
// handlers.
type Detector struct {
	mu  sync.Mutex
	cfg Config

	// Baseline learned during priming: per-prefix legitimate origin sets
	// (multi-origin baselines are anycast, hence benign MOAS) and the set
	// of ASes observed providing transit (mid-path).
	baseline map[trie.Prefix]map[bgp.ASN]bool
	transit  map[bgp.ASN]bool

	// Live routing view: per-(vp, prefix) current route plus per-prefix
	// tallies of VPs per origin and per leaker, kept incrementally so
	// window close classifies in O(touched prefixes).
	cur       map[routeKey]routeVal
	originCnt map[trie.Prefix]map[bgp.ASN]int
	leakCnt   map[trie.Prefix]map[bgp.ASN]int

	// Per-window accumulators, reset at each close.
	winTouched   map[trie.Prefix]bool
	winNewOrigin map[trie.Prefix]map[bgp.ASN]int // non-baseline origins seen: VP count
	winBlackhole map[trie.Prefix]*blackholeObs
	winChurn     map[trie.Prefix]int
	winArtifacts map[artifactKey]*artifactObs
	winTraceSigs map[traceroute.Key]map[string]bool

	// Diurnal slot activity: prefix -> set of window starts with churn,
	// pruned past the detection horizon.
	activity map[trie.Prefix]map[int64]bool

	emitted []Event
}

type blackholeObs struct {
	origin bgp.ASN
	vps    map[uint32]bool
}

type artifactKey struct {
	class Class
	key   traceroute.Key
}

type artifactObs struct {
	detail string
	score  float64
	count  int
}

// NewDetector builds a detector with an empty baseline; feed the priming
// table dump through Prime before streaming.
func NewDetector(cfg Config) *Detector {
	if cfg.WindowSec <= 0 {
		cfg.WindowSec = 900
	}
	if cfg.DiurnalDays <= 0 {
		cfg.DiurnalDays = 3
	}
	if cfg.DiurnalSparseMax <= 0 {
		cfg.DiurnalSparseMax = 3
	}
	d := &Detector{
		cfg:       cfg,
		baseline:  make(map[trie.Prefix]map[bgp.ASN]bool),
		transit:   make(map[bgp.ASN]bool),
		cur:       make(map[routeKey]routeVal),
		originCnt: make(map[trie.Prefix]map[bgp.ASN]int),
		leakCnt:   make(map[trie.Prefix]map[bgp.ASN]int),
		activity:  make(map[trie.Prefix]map[int64]bool),
	}
	d.resetWindow()
	return d
}

// SetSink replaces the emission callback. Useful when the sink (an SSE
// hub, say) is constructed after the detector it subscribes to.
func (d *Detector) SetSink(fn func(Event)) {
	d.mu.Lock()
	d.cfg.OnEvent = fn
	d.mu.Unlock()
}

func (d *Detector) resetWindow() {
	d.winTouched = make(map[trie.Prefix]bool)
	d.winNewOrigin = make(map[trie.Prefix]map[bgp.ASN]int)
	d.winBlackhole = make(map[trie.Prefix]*blackholeObs)
	d.winChurn = make(map[trie.Prefix]int)
	d.winArtifacts = make(map[artifactKey]*artifactObs)
	d.winTraceSigs = make(map[traceroute.Key]map[string]bool)
}

// Prime learns the baseline from one table-dump update: legitimate origin
// sets per prefix and the transit AS population. Priming also seeds the
// live routing view so MOAS classification starts from the full table.
func (d *Detector) Prime(u bgp.Update) {
	if u.Type != bgp.Announce || len(u.ASPath) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	origin := u.ASPath.Origin()
	set := d.baseline[u.Prefix]
	if set == nil {
		set = make(map[bgp.ASN]bool)
		d.baseline[u.Prefix] = set
	}
	set[origin] = true
	path := u.ASPath.Compact()
	for i := 1; i+1 < len(path); i++ {
		d.transit[path[i]] = true
	}
	d.setRoute(routeKey{peer: u.PeerIP, prefix: u.Prefix}, routeVal{origin: origin})
	metEventsPrimed.Inc()
}

// setRoute installs (or with zero val, removes) one vp route, maintaining
// the per-prefix origin and leaker tallies.
func (d *Detector) setRoute(rk routeKey, val routeVal) {
	if old, ok := d.cur[rk]; ok {
		if m := d.originCnt[rk.prefix]; m != nil {
			if m[old.origin]--; m[old.origin] <= 0 {
				delete(m, old.origin)
			}
		}
		if old.leaker != 0 {
			if m := d.leakCnt[rk.prefix]; m != nil {
				if m[old.leaker]--; m[old.leaker] <= 0 {
					delete(m, old.leaker)
				}
			}
		}
	}
	if val == (routeVal{}) {
		delete(d.cur, rk)
		return
	}
	d.cur[rk] = val
	m := d.originCnt[rk.prefix]
	if m == nil {
		m = make(map[bgp.ASN]int)
		d.originCnt[rk.prefix] = m
	}
	m[val.origin]++
	if val.leaker != 0 {
		lm := d.leakCnt[rk.prefix]
		if lm == nil {
			lm = make(map[bgp.ASN]int)
			d.leakCnt[rk.prefix] = lm
		}
		lm[val.leaker]++
	}
}

// TapUpdate ingests one streamed BGP update (rrr.RecordTap).
func (d *Detector) TapUpdate(u bgp.Update) {
	d.mu.Lock()
	defer d.mu.Unlock()
	metEventsUpdates.Inc()
	d.winChurn[u.Prefix]++
	d.winTouched[u.Prefix] = true
	rk := routeKey{peer: u.PeerIP, prefix: u.Prefix}
	if u.Type == bgp.Withdraw {
		d.setRoute(rk, routeVal{})
		return
	}
	if len(u.ASPath) == 0 {
		return
	}
	origin := u.ASPath.Origin()
	path := u.ASPath.Compact()
	var leaker bgp.ASN
	for i := 1; i+1 < len(path); i++ {
		if !d.transit[path[i]] {
			leaker = path[i]
			break
		}
	}
	d.setRoute(rk, routeVal{origin: origin, leaker: leaker})
	if set, known := d.baseline[u.Prefix]; !known || !set[origin] {
		m := d.winNewOrigin[u.Prefix]
		if m == nil {
			m = make(map[bgp.ASN]int)
			d.winNewOrigin[u.Prefix] = m
		}
		m[origin]++
	}
	for _, c := range u.Communities {
		if c == BlackholeCommunity {
			obs := d.winBlackhole[u.Prefix]
			if obs == nil {
				obs = &blackholeObs{origin: origin, vps: make(map[uint32]bool)}
				d.winBlackhole[u.Prefix] = obs
			}
			obs.vps[u.PeerIP] = true
			break
		}
	}
}

// TapTrace ingests one streamed public traceroute (rrr.RecordTap),
// scanning for per-flow load-balancing artifacts.
func (d *Detector) TapTrace(tr *traceroute.Traceroute) {
	if tr == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	metEventsTraces.Inc()
	key := tr.Key()
	seenAt := make(map[uint32]int)
	artifact := false
	for i, h := range tr.Hops {
		if !h.Responsive() {
			continue
		}
		if j, seen := seenAt[h.IP]; seen {
			cls := TraceCycle
			if j == i-1 {
				cls = TraceLoop
			}
			ak := artifactKey{class: cls, key: key}
			obs := d.winArtifacts[ak]
			if obs == nil {
				obs = &artifactObs{detail: trie.FormatIP(h.IP), score: float64(i)}
				d.winArtifacts[ak] = obs
			}
			obs.count++
			artifact = true
			break
		}
		seenAt[h.IP] = i
	}
	if artifact {
		return // a looping trace's hop signature is not a diamond variant
	}
	sig := make([]byte, 0, len(tr.Hops)*4)
	for _, h := range tr.Hops {
		sig = append(sig, byte(h.IP>>24), byte(h.IP>>16), byte(h.IP>>8), byte(h.IP))
	}
	set := d.winTraceSigs[key]
	if set == nil {
		set = make(map[string]bool)
		d.winTraceSigs[key] = set
	}
	set[string(sig)] = true
}

// TapWindowClose classifies the closing window and emits its events in
// canonical EventLess order (rrr.RecordTap). The pipeline invokes it after
// the window's staleness signals have been published and before the
// window-close marker, so on an SSE stream each window reads:
// signals, routing events, marker.
func (d *Detector) TapWindowClose(ws int64) {
	d.mu.Lock()
	var evs []Event
	d.classifyHijacks(ws, &evs)
	d.classifyLeaks(ws, &evs)
	d.classifyBlackholes(ws, &evs)
	d.classifyArtifacts(ws, &evs)
	d.classifyDiurnal(ws, &evs)
	sort.Slice(evs, func(i, j int) bool { return EventLess(evs[i], evs[j]) })
	d.emitted = append(d.emitted, evs...)
	d.resetWindow()
	metEventsWindows.Inc()
	sink := d.cfg.OnEvent
	d.mu.Unlock()
	for _, ev := range evs {
		metEventsEmitted(ev.Class).Inc()
		if sink != nil {
			sink(ev)
		}
	}
}

// coveringBaseline finds the longest baseline prefix strictly covering p,
// for sub-prefix hijack classification.
func (d *Detector) coveringBaseline(p trie.Prefix) (trie.Prefix, map[bgp.ASN]bool, bool) {
	for l := int(p.Len) - 1; l >= 1; l-- {
		anc := trie.MakePrefix(p.Addr, uint8(l))
		if set, ok := d.baseline[anc]; ok {
			return anc, set, true
		}
	}
	return trie.Prefix{}, nil, false
}

func (d *Detector) classifyHijacks(ws int64, evs *[]Event) {
	for prefix, origins := range d.winNewOrigin {
		baseline, known := d.baseline[prefix]
		for origin, vps := range origins {
			if !known {
				// Unknown prefix: a more-specific of a baseline prefix
				// originated by a foreign AS is a sub-prefix hijack; the
				// covering origin announcing its own more-specific (or a
				// genuinely new prefix) is not an event.
				_, ancSet, covered := d.coveringBaseline(prefix)
				if covered && !ancSet[origin] {
					*evs = append(*evs, Event{
						Class: HijackSubprefix, WindowStart: ws,
						Prefix: prefix, AS: origin,
						Detail:  "more-specific of covered baseline prefix",
						Score:   float64(vps),
						VPCount: vps,
					})
				}
				continue
			}
			// Known prefix, foreign origin: MOAS while any vantage point
			// still routes to a baseline origin, full origin hijack once
			// none does. Stable baseline multi-origin (anycast) never
			// reaches here — those origins are in the baseline set.
			baselineVisible := 0
			for bOrigin := range baseline {
				baselineVisible += d.originCnt[prefix][bOrigin]
			}
			cls := HijackOrigin
			detail := "baseline origin displaced"
			if baselineVisible > 0 {
				cls = HijackMOAS
				detail = "foreign origin alongside baseline"
			}
			*evs = append(*evs, Event{
				Class: cls, WindowStart: ws,
				Prefix: prefix, AS: origin,
				Detail:  detail,
				Score:   float64(vps),
				VPCount: vps,
			})
		}
	}
}

func (d *Detector) classifyLeaks(ws int64, evs *[]Event) {
	// A leak is flagged only while the leaked path is still the current
	// route at window close: a leak announced and healed within one window
	// self-heals and stays silent by design.
	for prefix := range d.winTouched {
		for leaker, n := range d.leakCnt[prefix] {
			if n <= 0 {
				continue
			}
			*evs = append(*evs, Event{
				Class: RouteLeak, WindowStart: ws,
				Prefix: prefix, AS: leaker,
				Detail:  "non-transit AS in transit position",
				Score:   float64(n),
				VPCount: n,
			})
		}
	}
}

func (d *Detector) classifyBlackholes(ws int64, evs *[]Event) {
	for prefix, obs := range d.winBlackhole {
		*evs = append(*evs, Event{
			Class: Blackhole, WindowStart: ws,
			Prefix: prefix, AS: obs.origin,
			Detail:  "RFC7999 65535:666",
			Score:   float64(len(obs.vps)),
			VPCount: len(obs.vps),
		})
	}
}

func (d *Detector) classifyArtifacts(ws int64, evs *[]Event) {
	for ak, obs := range d.winArtifacts {
		*evs = append(*evs, Event{
			Class: ak.class, WindowStart: ws,
			Key:    ak.key,
			Detail: "repeated hop " + obs.detail,
			Score:  obs.score,
		})
	}
	for key, sigs := range d.winTraceSigs {
		if len(sigs) < 2 {
			continue
		}
		*evs = append(*evs, Event{
			Class: TraceDiamond, WindowStart: ws,
			Key:    key,
			Detail: "divergent same-pair hop sequences",
			Score:  float64(len(sigs)),
		})
	}
}

func (d *Detector) classifyDiurnal(ws int64, evs *[]Event) {
	const day = 86400
	horizon := ws - int64(d.cfg.DiurnalDays+1)*day
	for prefix, n := range d.winChurn {
		if n == 0 {
			continue
		}
		slots := d.activity[prefix]
		if slots == nil {
			slots = make(map[int64]bool)
			d.activity[prefix] = slots
		}
		slots[ws] = true
		// Same daily slot active for DiurnalDays consecutive days, with
		// the rest of the trailing day mostly quiet.
		periodic := true
		for dd := 1; dd < d.cfg.DiurnalDays; dd++ {
			if !slots[ws-int64(dd)*day] {
				periodic = false
				break
			}
		}
		if periodic {
			others := 0
			for at := range slots {
				if at > ws-day && at < ws {
					others++
				}
			}
			if others <= d.cfg.DiurnalSparseMax {
				*evs = append(*evs, Event{
					Class: Diurnal, WindowStart: ws,
					Prefix: prefix,
					Detail: "daily-slot churn recurrence",
					Score:  float64(d.cfg.DiurnalDays),
				})
			}
		}
	}
	// Prune stale slots so long runs stay bounded.
	for prefix, slots := range d.activity {
		for at := range slots {
			if at < horizon {
				delete(slots, at)
			}
		}
		if len(slots) == 0 {
			delete(d.activity, prefix)
		}
	}
}

// Events returns every emitted event so far, in emission order (windows
// ascending, EventLess within each window).
func (d *Detector) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Event, len(d.emitted))
	copy(out, d.emitted)
	return out
}

// Filter selects events by class set and window range for POST /v1/events
// queries; nil classes means every class, and a zero bound disables that
// side of the range.
type Filter struct {
	Classes    []Class
	FromWindow int64
	ToWindow   int64
}

// Filtered returns the emitted events matching f, preserving order.
func (d *Detector) Filtered(f Filter) []Event {
	want := make(map[Class]bool, len(f.Classes))
	for _, c := range f.Classes {
		want[c] = true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Event
	for _, ev := range d.emitted {
		if len(want) > 0 && !want[ev.Class] {
			continue
		}
		if f.FromWindow != 0 && ev.WindowStart < f.FromWindow {
			continue
		}
		if f.ToWindow != 0 && ev.WindowStart > f.ToWindow {
			continue
		}
		out = append(out, ev)
	}
	return out
}
