package events

import "rrr/internal/obs"

// Event-detection metric handles, resolved once at package init following
// the serving-layer idiom: per-class emission counters plus tap-side
// ingestion counters, all under the rrr_events_* families on GET /metrics.
var (
	metEventsPrimed  = obs.Default.Counter("rrr_events_primed_total")
	metEventsUpdates = obs.Default.Counter("rrr_events_updates_total")
	metEventsTraces  = obs.Default.Counter("rrr_events_traces_total")
	metEventsWindows = obs.Default.Counter("rrr_events_windows_total")

	metEmittedByClass = func() [numClasses]*obs.Counter {
		var out [numClasses]*obs.Counter
		for c := Class(0); c < numClasses; c++ {
			out[c] = obs.Default.Counter("rrr_events_emitted_total", "class", c.String())
		}
		return out
	}()
)

// metEventsEmitted resolves the per-class emission counter; out-of-range
// classes fall back to class 0 rather than panicking on a hot path.
func metEventsEmitted(c Class) *obs.Counter {
	if c >= numClasses {
		c = 0
	}
	return metEmittedByClass[c]
}

func init() {
	obs.Default.Help("rrr_events_primed_total", "table-dump updates used to learn the event baseline")
	obs.Default.Help("rrr_events_updates_total", "streamed BGP updates tapped by the event detector")
	obs.Default.Help("rrr_events_traces_total", "streamed traceroutes tapped by the event detector")
	obs.Default.Help("rrr_events_windows_total", "windows classified by the event detector")
	obs.Default.Help("rrr_events_emitted_total", "routing events emitted, by class")
}
