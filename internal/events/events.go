// Package events detects and classifies routing events — the adversarial
// and artifactual dynamics the staleness engine must not mistake for path
// change: prefix hijacks (origin replacement, MOAS, sub-prefix), route
// leaks, RFC 7999 blackhole announcements, traceroute measurement
// artifacts (per-flow load-balancing loops, cycles, and diamonds; Viger et
// al.), and diurnal churn periodicity ("The Internet Pendulum").
//
// The Detector consumes the same ingested records as the staleness engine,
// fed through the Pipeline's record tap on the single merge-loop
// goroutine, so its event stream is deterministic and identical across the
// serial engine, the sharded engine, and every worker of a cluster (each
// worker ingests the full feed). Events are emitted at window close in the
// canonical EventLess order, mirroring the signal stream's SignalLess
// contract, so cluster routers can union-merge worker streams byte for
// byte.
//
// Truth is the simulator-side ground-truth label for one injected episode;
// the binary codec (EncodeTruths/DecodeTruths) lets scenario packs ship
// labels alongside streams and is fuzzed like every other untrusted-bytes
// entry point in the repo.
package events

import (
	"fmt"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// Class enumerates the routing-event taxonomy.
type Class uint8

// Event classes. BGP classes carry Prefix/AS; trace classes carry Key.
const (
	// HijackOrigin is a full origin replacement: a prefix's only baseline
	// origin disappears from every vantage point in favor of a new AS.
	HijackOrigin Class = iota
	// HijackMOAS is a partial hijack: a non-baseline origin appears while
	// baseline origins remain visible from other vantage points. Stable
	// multi-origin prefixes in the baseline (anycast) are benign and never
	// classified here.
	HijackMOAS
	// HijackSubprefix is an announcement of a more-specific covered by a
	// baseline prefix, originated by a different AS.
	HijackSubprefix
	// RouteLeak is a path carrying a non-transit AS (never observed
	// mid-path in the baseline) in a transit position, still routed at
	// window close — a leak withdrawn within its window self-heals and is
	// deliberately not flagged.
	RouteLeak
	// Blackhole is an announcement carrying the RFC 7999 community
	// 65535:666.
	Blackhole
	// TraceLoop is a traceroute visiting the same address at consecutive
	// TTLs.
	TraceLoop
	// TraceCycle is a traceroute revisiting an address at a later,
	// non-consecutive TTL.
	TraceCycle
	// TraceDiamond is two same-pair traceroutes in one window with
	// divergent hop sequences (per-flow load balancing).
	TraceDiamond
	// Diurnal is a prefix whose update churn recurs in the same daily
	// time slot across at least three consecutive days.
	Diurnal

	numClasses
)

// String names the class in the wire form used by /v1/events.
func (c Class) String() string {
	switch c {
	case HijackOrigin:
		return "hijack-origin"
	case HijackMOAS:
		return "hijack-moas"
	case HijackSubprefix:
		return "hijack-subprefix"
	case RouteLeak:
		return "route-leak"
	case Blackhole:
		return "blackhole"
	case TraceLoop:
		return "trace-loop"
	case TraceCycle:
		return "trace-cycle"
	case TraceDiamond:
		return "trace-diamond"
	case Diurnal:
		return "diurnal"
	}
	return "unknown"
}

// ClassByName inverts Class.String for wire-form decoding.
var ClassByName = func() map[string]Class {
	m := make(map[string]Class, int(numClasses))
	for c := Class(0); c < numClasses; c++ {
		m[c.String()] = c
	}
	return m
}()

// ParseClass resolves a wire-form class name.
func ParseClass(s string) (Class, error) {
	c, ok := ClassByName[s]
	if !ok {
		return 0, fmt.Errorf("events: unknown class %q", s)
	}
	return c, nil
}

// Event is one classified routing event, stamped with the window whose
// close emitted it. BGP classes populate Prefix and AS; trace classes
// populate Key.
type Event struct {
	Class       Class
	WindowStart int64
	Prefix      trie.Prefix
	AS          bgp.ASN
	Key         traceroute.Key
	Detail      string
	Score       float64
	VPCount     int
}

// EventLess is the canonical per-window emission order, the events
// counterpart of the engine's SignalLess: window, class, prefix, AS, key,
// detail. Merging per-worker event streams with it reproduces a single
// detector's output byte for byte.
func EventLess(a, b Event) bool {
	if a.WindowStart != b.WindowStart {
		return a.WindowStart < b.WindowStart
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Prefix.Addr != b.Prefix.Addr {
		return a.Prefix.Addr < b.Prefix.Addr
	}
	if a.Prefix.Len != b.Prefix.Len {
		return a.Prefix.Len < b.Prefix.Len
	}
	if a.AS != b.AS {
		return a.AS < b.AS
	}
	if a.Key.Src != b.Key.Src {
		return a.Key.Src < b.Key.Src
	}
	if a.Key.Dst != b.Key.Dst {
		return a.Key.Dst < b.Key.Dst
	}
	return a.Detail < b.Detail
}

// Truth is one ground-truth label emitted by a scenario pack: an injected
// episode's class, active interval, and identifying attributes. Benign
// marks a look-alike the classifiers must NOT flag (stable anycast MOAS, a
// leak that self-heals within one window); an event matching a benign
// truth scores as a false positive.
type Truth struct {
	Class  Class
	Start  int64 // episode start (seconds)
	End    int64 // episode end, inclusive of the window containing it
	Prefix trie.Prefix
	AS     bgp.ASN
	Key    traceroute.Key
	Benign bool
	Detail string
}

// Matches reports whether ev plausibly observes this truth: same class,
// same identifying attribute, and the event window overlapping the
// episode's active interval padded by one window on each side (detection
// lands at the close of the window containing the episode).
func (t Truth) Matches(ev Event, windowSec int64) bool {
	if ev.Class != t.Class {
		return false
	}
	if ev.WindowStart+windowSec <= t.Start-windowSec || ev.WindowStart > t.End+windowSec {
		return false
	}
	switch t.Class {
	case TraceLoop, TraceCycle, TraceDiamond:
		return ev.Key == t.Key
	default:
		if t.Prefix.Len != 0 || t.Prefix.Addr != 0 {
			if ev.Prefix != t.Prefix {
				return false
			}
		}
		if t.AS != 0 && ev.AS != t.AS {
			return false
		}
		return true
	}
}
