package anomaly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feedConstant(d Detector, v float64, n int) {
	for i := 0; i < n; i++ {
		d.Add(v)
	}
}

func TestZScoreFlagsSpike(t *testing.T) {
	d := NewZScore()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		if d.Add(1.0 + 0.01*rng.NormFloat64()) {
			t.Fatalf("false positive at %d", i)
		}
	}
	if !d.Add(0.2) {
		t.Fatal("spike not flagged")
	}
	if d.Score() <= 3.5 {
		t.Errorf("score = %f; want > 3.5", d.Score())
	}
}

func TestZScoreNotReadyBeforeMinObservations(t *testing.T) {
	d := NewZScore()
	for i := 0; i < MinObservations-1; i++ {
		if d.Add(float64(i * 1000)) { // wild values, but not ready yet
			t.Fatalf("flagged before ready at %d", i)
		}
	}
	if d.Ready() {
		t.Error("should not be ready at MinObservations-1")
	}
	d.Add(5)
	if !d.Ready() {
		t.Error("should be ready at MinObservations")
	}
}

func TestZScoreConstantHistoryDegenerate(t *testing.T) {
	d := NewZScore()
	feedConstant(d, 1.0, 30)
	if d.Add(1.0) {
		t.Error("same value should not be an outlier")
	}
	if !d.Add(0.9) {
		t.Error("any deviation from constant history should flag")
	}
	// Finite by contract: Inf would fail JSON encoding of signals.
	if d.Score() != DegenerateScore {
		t.Errorf("score = %v; want DegenerateScore", d.Score())
	}
}

func TestZScoreStationarityPreserved(t *testing.T) {
	// After a persistent level shift, every shifted window keeps flagging
	// because flagged values are excluded from history (§4.1.2).
	d := NewZScore()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		d.Add(1.0 + 0.01*rng.NormFloat64())
	}
	flags := 0
	for i := 0; i < 10; i++ {
		if d.Add(0.3 + 0.01*rng.NormFloat64()) {
			flags++
		}
	}
	if flags != 10 {
		t.Errorf("persistent shift flagged %d/10 windows; want 10", flags)
	}
}

func TestZScoreMADZeroFallback(t *testing.T) {
	// History where >50% of values are identical makes MAD zero but the
	// mean absolute deviation nonzero.
	d := NewZScore()
	for i := 0; i < 30; i++ {
		v := 1.0
		if i%4 == 0 {
			v = 1.1
		}
		d.Add(v)
	}
	if d.Add(1.05) {
		t.Error("in-range value flagged under MAD fallback")
	}
	if !d.Add(9.0) {
		t.Error("far value not flagged under MAD fallback")
	}
}

func TestBitmapFlagsRegimeChange(t *testing.T) {
	d := NewBitmap()
	rng := rand.New(rand.NewSource(3))
	falsePositives := 0
	for i := 0; i < 80; i++ {
		if d.Add(1.0 + 0.02*rng.NormFloat64()) {
			falsePositives++
		}
	}
	// A statistical detector on noise may rarely flag, but the steady
	// series must stay overwhelmingly clean.
	if falsePositives > 3 {
		t.Fatalf("%d false positives on steady series; want <= 3", falsePositives)
	}
	flagged := 0
	for i := 0; i < 8; i++ {
		if d.Add(0.0 + 0.02*rng.NormFloat64()) {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("regime change not flagged within lead window")
	}
}

func TestBitmapNotReadyEarly(t *testing.T) {
	d := NewBitmap()
	if d.Ready() {
		t.Error("fresh detector should not be ready")
	}
	for i := 0; i < MinObservations+20; i++ {
		d.Add(float64(i % 3))
	}
	if !d.Ready() {
		t.Error("detector should be ready after warmup")
	}
}

func TestBitmapConstantSeriesNeverFlags(t *testing.T) {
	d := NewBitmap()
	for i := 0; i < 200; i++ {
		if d.Add(5.0) {
			t.Fatalf("constant series flagged at %d", i)
		}
	}
}

func TestBitmapDistanceProperties(t *testing.T) {
	a := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if d := bitmapDistance(a, a, 4); d != 0 {
		t.Errorf("identical windows distance = %f; want 0", d)
	}
	b := []float64{1, 5, 1, 5, 1, 5, 1, 5}
	c := []float64{1, 1, 1, 1, 5, 5, 5, 5}
	if d := bitmapDistance(b, c, 4); d <= 0 {
		t.Errorf("different shapes distance = %f; want > 0", d)
	}
	if d := bitmapDistance(nil, a, 4); d != 0 {
		t.Errorf("empty window distance = %f; want 0", d)
	}
}

func TestSaxSymbolBoundaries(t *testing.T) {
	if saxSymbol(-2, 4) != 0 || saxSymbol(2, 4) != 3 {
		t.Error("extremes map to first/last symbols")
	}
	if saxSymbol(0.0, 4) != 2 {
		// 0 is not < 0 breakpoint, so it falls in the third bucket.
		t.Errorf("saxSymbol(0) = %d; want 2", saxSymbol(0.0, 4))
	}
	// Unknown alphabet falls back to 4.
	if saxSymbol(0.0, 99) != 2 {
		t.Error("fallback alphabet broken")
	}
}

func TestMedianAndMAD(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %f", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %f", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %f", m)
	}
	if mad := medianAbsDev([]float64{1, 1, 1, 10}, 1); mad != 0 {
		t.Errorf("mad = %f; want 0", mad)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || math.Abs(s-2) > 1e-9 {
		t.Errorf("meanStd = %f, %f; want 5, 2", m, s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd should be 0,0")
	}
}

func TestWindowedSeriesAggregation(t *testing.T) {
	var added []float64
	rec := &recordingDetector{onAdd: func(v float64) bool { added = append(added, v); return false }}
	s := &WindowedSeries{WindowSec: 900, Det: rec}
	s.Observe(0, 1)
	s.Observe(100, 3)
	s.Observe(950, 10) // closes window 0 with mean 2
	if len(added) != 1 || added[0] != 2 {
		t.Fatalf("added = %v; want [2]", added)
	}
	s.AdvanceTo(3 * 900) // closes window 1 (value 10); windows 2 missing
	if len(added) != 2 || added[1] != 10 {
		t.Fatalf("added = %v; want [2 10]", added)
	}
	s.AdvanceTo(10 * 900) // all missing: nothing added
	if len(added) != 2 {
		t.Fatalf("missing windows were fed to detector: %v", added)
	}
}

func TestWindowedSeriesSumAggAndOutlier(t *testing.T) {
	z := NewZScore()
	s := &WindowedSeries{WindowSec: 900, Det: z, Agg: AggSum}
	// 30 windows, 3 observations each summing to 3.
	for w := int64(0); w < 30; w++ {
		for k := int64(0); k < 3; k++ {
			s.Observe(w*900+k*10, 1)
		}
	}
	// Outlier window: sum = 30.
	for k := int64(0); k < 30; k++ {
		s.Observe(30*900+k, 1)
	}
	outs := s.AdvanceTo(31 * 900)
	if len(outs) != 1 {
		t.Fatalf("outliers = %v; want 1", outs)
	}
	if outs[0].WindowStart != 30*900 || outs[0].Value != 30 {
		t.Errorf("outlier = %+v", outs[0])
	}
}

type recordingDetector struct {
	onAdd func(float64) bool
	last  float64
}

func (r *recordingDetector) Add(v float64) bool { r.last = v; return r.onAdd(v) }
func (r *recordingDetector) Score() float64     { return 0 }
func (r *recordingDetector) Ready() bool        { return true }

func TestChooseWindow(t *testing.T) {
	// One observation every 900 s for 20+ windows → chooses 900.
	var times []int64
	for i := int64(0); i < 25; i++ {
		times = append(times, i*900+10)
	}
	now := int64(25 * 900)
	w, ok := ChooseWindow(times, now, nil)
	if !ok || w != 900 {
		t.Fatalf("ChooseWindow = %d,%v; want 900", w, ok)
	}
	// One observation every hour → 900 fails, 3600 works.
	times = nil
	for i := int64(0); i < 30; i++ {
		times = append(times, i*3600+17)
	}
	now = 30 * 3600
	w, ok = ChooseWindow(times, now, nil)
	if !ok || w != 3600 {
		t.Fatalf("ChooseWindow hourly = %d,%v; want 3600", w, ok)
	}
	// Too sparse for any ladder entry → not monitorable.
	times = []int64{0, 1000000}
	if _, ok := ChooseWindow(times, 2000000, nil); ok {
		t.Error("sparse series should not be monitorable")
	}
}

func BenchmarkZScoreAdd(b *testing.B) {
	d := NewZScore()
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(vals[i&1023])
	}
}

func BenchmarkBitmapAdd(b *testing.B) {
	d := NewBitmap()
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(vals[i&1023])
	}
}

// Property: ChooseWindowMin returns a window satisfying its own contract.
func TestQuickChooseWindowSound(t *testing.T) {
	f := func(gaps []uint16, minPer8 uint8) bool {
		minPer := int(minPer8%3) + 1
		var times []int64
		t := int64(0)
		for _, g := range gaps {
			t += int64(g%2000) + 1
			times = append(times, t)
		}
		now := t + 1
		w, ok := ChooseWindowMin(times, now, nil, minPer)
		if !ok {
			return true
		}
		endIdx := now / w
		startIdx := endIdx - MinObservations
		if startIdx < 0 {
			return false
		}
		counts := make(map[int64]int)
		for _, tt := range times {
			counts[tt/w]++
		}
		for idx := startIdx; idx < endIdx; idx++ {
			if counts[idx] < minPer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the z-score detector never flags a value equal to its
// (constant) history, regardless of history length.
func TestQuickZScoreConstantNeverFlags(t *testing.T) {
	f := func(v float64, n uint8) bool {
		if v != v { // NaN
			return true
		}
		d := NewZScore()
		for i := 0; i < int(n%120)+1; i++ {
			if d.Add(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWindowedSeriesFirstLast(t *testing.T) {
	s := &WindowedSeries{WindowSec: 900, Det: NewZScore()}
	if _, ok := s.First(); ok {
		t.Fatal("First before any window")
	}
	s.Observe(10, 2)
	s.AdvanceTo(900) // closes window 0 with value 2
	if v, ok := s.First(); !ok || v != 2 {
		t.Fatalf("First = %v,%v", v, ok)
	}
	s.Observe(1000, 4)
	s.AdvanceTo(1800)
	if v, ok := s.Last(); !ok || v != 4 {
		t.Fatalf("Last = %v,%v", v, ok)
	}
	if v, _ := s.First(); v != 2 {
		t.Fatal("First drifted")
	}
}

func TestBitmapScoreAccessor(t *testing.T) {
	d := NewBitmap()
	for i := 0; i < 40; i++ {
		d.Add(1)
	}
	if d.Score() != 0 {
		t.Fatalf("constant series score = %f", d.Score())
	}
	d.Add(0)
	if d.Score() <= 0 {
		t.Fatal("deviation should produce a positive score")
	}
}
