package anomaly

import (
	"math/rand"
	"testing"
)

// The paper pairs detectors with feeds deliberately: Bitmap for BGP-derived
// series (§4.1.2), modified z-score for the noisier traceroute-derived
// series (§4.2.1, "we found it to be more robust for the noisier traceroute
// data"). These benchmarks quantify that design choice on synthetic
// workloads: detection rate on injected level shifts and false positives on
// steady noise, at two noise amplitudes.

type detectorStats struct {
	detected, shifts int
	falsePos, quiet  int
}

func runWorkload(mk func() Detector, noise float64, seed int64) detectorStats {
	rng := rand.New(rand.NewSource(seed))
	var st detectorStats
	for trial := 0; trial < 40; trial++ {
		d := mk()
		level := 1.0
		// Warmup + steady phase.
		for i := 0; i < 60; i++ {
			if d.Add(level+noise*rng.NormFloat64()) && i >= MinObservations {
				st.falsePos++
			}
			if i >= MinObservations {
				st.quiet++
			}
		}
		// Injected persistent shift; detection within 6 windows counts.
		st.shifts++
		level = 0.4
		for i := 0; i < 6; i++ {
			if d.Add(level + noise*rng.NormFloat64()) {
				st.detected++
				break
			}
		}
	}
	return st
}

func reportComparison(b *testing.B, name string, mk func() Detector) {
	b.Helper()
	for _, tc := range []struct {
		label string
		noise float64
	}{
		{"low-noise", 0.01},
		{"high-noise", 0.12},
	} {
		st := runWorkload(mk, tc.noise, 7)
		b.ReportMetric(float64(st.detected)/float64(st.shifts), name+"-"+tc.label+"-detect")
		b.ReportMetric(float64(st.falsePos)/float64(st.quiet), name+"-"+tc.label+"-fp")
	}
}

// BenchmarkDetectorChoice reports detection and false-positive rates for
// the two detectors under the two noise regimes the paper assigns them to.
func BenchmarkDetectorChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportComparison(b, "bitmap", func() Detector { return NewBitmap() })
		reportComparison(b, "zscore", func() Detector { return NewZScore() })
	}
}

// TestDetectorChoiceRationale asserts the qualitative claim: under heavy
// noise the z-score stays usable while remaining sensitive, supporting the
// paper's use of it for traceroute-derived ratios.
func TestDetectorChoiceRationale(t *testing.T) {
	z := runWorkload(func() Detector { return NewZScore() }, 0.12, 7)
	if det := float64(z.detected) / float64(z.shifts); det < 0.5 {
		t.Errorf("z-score detects %.2f of shifts under heavy noise; want >= 0.5", det)
	}
	if fp := float64(z.falsePos) / float64(z.quiet); fp > 0.05 {
		t.Errorf("z-score FP rate %.3f under heavy noise; want <= 0.05", fp)
	}
	// And on clean series both detectors must be near-perfect.
	for name, mk := range map[string]func() Detector{
		"bitmap": func() Detector { return NewBitmap() },
		"zscore": func() Detector { return NewZScore() },
	} {
		st := runWorkload(mk, 0.01, 7)
		if det := float64(st.detected) / float64(st.shifts); det < 0.9 {
			t.Errorf("%s detects %.2f of shifts on clean series; want >= 0.9", name, det)
		}
	}
}
