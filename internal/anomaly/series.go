package anomaly

// WindowedSeries buckets raw observations into fixed-duration time windows,
// feeds the per-window aggregate to an outlier detector as each window
// closes, and reports flagged windows. Empty windows are treated as missing
// values: they are skipped, never flagged (paper §4.1.2: "If P^intersect is
// empty, we consider the value as missing and not as an outlier").
type WindowedSeries struct {
	// WindowSec is the window duration in seconds (15 minutes = 900 in the
	// paper's BGP pipeline).
	WindowSec int64
	// Det is the outlier detector fed with one aggregate per non-empty
	// window.
	Det Detector
	// Agg chooses how multiple observations in one window combine;
	// AggMean if nil.
	Agg func(sum float64, n int) float64

	started bool
	curIdx  int64
	curSum  float64
	curN    int

	first, last       float64
	hasFirst, hasLast bool
}

// First returns the first completed non-empty window's aggregate: the
// series' baseline value for §4.3.2 revocation checks.
func (s *WindowedSeries) First() (float64, bool) { return s.first, s.hasFirst }

// Last returns the most recent completed non-empty window's aggregate.
func (s *WindowedSeries) Last() (float64, bool) { return s.last, s.hasLast }

// AggMean averages the observations in a window.
func AggMean(sum float64, n int) float64 { return sum / float64(n) }

// AggSum totals the observations in a window (for count series like U_i).
func AggSum(sum float64, n int) float64 { return sum }

// Outlier describes a flagged window.
type Outlier struct {
	// WindowStart is the start time (seconds) of the flagged window.
	WindowStart int64
	// Value is the aggregate that was flagged.
	Value float64
	// Score is the detector's outlier score.
	Score float64
}

// Observe adds an observation at time t and returns any outliers produced
// by windows that closed as a result. Observations must arrive in
// non-decreasing time order; out-of-order points are folded into the
// current window.
func (s *WindowedSeries) Observe(t int64, v float64) []Outlier {
	idx := t / s.WindowSec
	var out []Outlier
	if !s.started {
		s.started = true
		s.curIdx = idx
	}
	if idx > s.curIdx {
		out = s.flushTo(idx)
	}
	s.curSum += v
	s.curN++
	return out
}

// AdvanceTo closes all windows strictly before time t without adding an
// observation, returning any outliers from the closed windows.
func (s *WindowedSeries) AdvanceTo(t int64) []Outlier {
	if !s.started {
		return nil
	}
	idx := t / s.WindowSec
	if idx <= s.curIdx {
		return nil
	}
	return s.flushTo(idx)
}

// flushTo closes windows up to (but not including) idx. Only the current
// window can hold data; the gap windows between curIdx and idx are missing
// and are skipped entirely.
func (s *WindowedSeries) flushTo(idx int64) []Outlier {
	var out []Outlier
	if s.curN > 0 {
		agg := s.Agg
		if agg == nil {
			agg = AggMean
		}
		v := agg(s.curSum, s.curN)
		if !s.hasFirst {
			s.first, s.hasFirst = v, true
		}
		s.last, s.hasLast = v, true
		if s.Det.Add(v) {
			out = append(out, Outlier{
				WindowStart: s.curIdx * s.WindowSec,
				Value:       v,
				Score:       s.Det.Score(),
			})
		}
	}
	s.curIdx = idx
	s.curSum, s.curN = 0, 0
	return out
}

// Ready reports whether the underlying detector has enough history.
func (s *WindowedSeries) Ready() bool { return s.Det.Ready() }

// WindowLadder is the set of candidate window durations used to auto-size
// traceroute-derived series (§4.2.1): minimum 15 minutes (the BGP window),
// maximum 24 hours (bounding accumulation to 20 days of data).
var WindowLadder = []int64{900, 1800, 3600, 7200, 14400, 28800, 43200, 86400}

// ChooseWindow selects the smallest window duration from ladder such that
// the most recent 20 consecutive windows ending at `now` each contain at
// least minPer of the given observation timestamps (minPer < 1 is treated
// as 1). It returns false when even the largest window cannot produce 20
// consecutive populated windows, in which case the subpath is not
// considered for staleness inference (§4.2.1). Requiring more than one
// observation per window keeps the per-window ratio from degenerating into
// single-coin-flip noise.
func ChooseWindow(times []int64, now int64, ladder []int64) (int64, bool) {
	return ChooseWindowMin(times, now, ladder, 1)
}

// ChooseWindowMin is ChooseWindow with an explicit per-window minimum.
func ChooseWindowMin(times []int64, now int64, ladder []int64, minPer int) (int64, bool) {
	if len(ladder) == 0 {
		ladder = WindowLadder
	}
	if minPer < 1 {
		minPer = 1
	}
ladderLoop:
	for _, w := range ladder {
		endIdx := now / w
		startIdx := endIdx - MinObservations
		if startIdx < 0 {
			continue
		}
		var filled [MinObservations]int
		for _, t := range times {
			idx := t / w
			if idx >= startIdx && idx < endIdx {
				filled[idx-startIdx]++
			}
		}
		for _, f := range filled {
			if f < minPer {
				continue ladderLoop
			}
		}
		return w, true
	}
	return 0, false
}
