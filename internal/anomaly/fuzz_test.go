package anomaly

import (
	"math"
	"testing"
)

// scenarioSeries builds fuzz seeds shaped like the series adversarial
// scenario packs drive through the detectors: a long constant baseline
// (the degenerate MAD=0 regime) broken by hijack-style spikes, a diurnal
// square wave, and a self-healing excursion that returns to baseline.
func scenarioSeries() [][]byte {
	constantThenSpike := make([]byte, 0, MinObservations+4)
	for i := 0; i < MinObservations+1; i++ {
		constantThenSpike = append(constantThenSpike, 0x10)
	}
	constantThenSpike = append(constantThenSpike, 0x7f, 0x10, 0x10)

	diurnal := make([]byte, 0, 96)
	for day := 0; day < 4; day++ {
		for slot := 0; slot < 24; slot++ {
			v := byte(0x08)
			if slot == 12 {
				v = 0x60 // the daily churn slot
			}
			diurnal = append(diurnal, v)
		}
	}

	selfHeal := make([]byte, 0, MinObservations+6)
	for i := 0; i < MinObservations; i++ {
		selfHeal = append(selfHeal, 0x20)
	}
	selfHeal = append(selfHeal, 0x21, 0x5a, 0x20, 0x20, 0x20)

	return [][]byte{constantThenSpike, diurnal, selfHeal, {0x10}, nil}
}

// FuzzZScoreDegenerate drives arbitrary byte-derived series through the
// modified-z detector, pinning the degenerate constant-history contract:
// Add never panics, Score is never NaN or negative, an outlier verdict
// always carries a positive score, and DegenerateScore appears only once
// the detector is ready.
func FuzzZScoreDegenerate(f *testing.F) {
	for _, seed := range scenarioSeries() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		d := NewZScore()
		for i, b := range data {
			v := float64(int8(b))
			out := d.Add(v)
			s := d.Score()
			if math.IsNaN(s) || s < 0 {
				t.Fatalf("step %d (v=%v): score %v", i, v, s)
			}
			if out && !(s > 0) {
				t.Fatalf("step %d (v=%v): outlier verdict with score %v", i, v, s)
			}
			if out && len(d.hist) < MinObservations {
				t.Fatalf("step %d: outlier before MinObservations history", i)
			}
			if s == DegenerateScore && !out {
				t.Fatalf("step %d: degenerate score without outlier verdict", i)
			}
		}
	})
}

// FuzzBitmapDetector pins the same no-panic/no-NaN contract for the
// bitmap detector over the identical seed corpora.
func FuzzBitmapDetector(f *testing.F) {
	for _, seed := range scenarioSeries() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<11 {
			data = data[:1<<11]
		}
		d := NewBitmap()
		for i, b := range data {
			d.Add(float64(int8(b)))
			if s := d.Score(); math.IsNaN(s) || s < 0 {
				t.Fatalf("step %d: score %v", i, s)
			}
		}
	})
}
