// Package anomaly implements the two univariate time-series outlier
// detectors the paper uses to turn monitored ratios into staleness
// prediction signals: the assumption-free Bitmap detector of Wei et al.
// (SSDBM 2005), used on BGP-derived series (§4.1.2), and the modified
// z-score of Iglewicz & Hoaglin (1993), used on the noisier
// traceroute-derived series (§4.2.1).
//
// Both detectors are online: values arrive one per time window. Both follow
// the paper's stationarity rule (§4.1.2): windows flagged as outliers are
// removed from the detector's history so a persistent level shift keeps
// registering as an outlier instead of becoming the new normal. Missing
// windows are never outliers and leave the history untouched.
package anomaly

import (
	"math"
	"sort"
)

// MinObservations is the minimum number of history windows required before
// a detector will flag anything; 20 is "widely considered as the minimum
// recommended number of observations for robust outlier detection" (§4.2.1).
const MinObservations = 20

// Detector is an online outlier detector over one univariate series.
type Detector interface {
	// Add appends the next window's value and reports whether that window
	// is an outlier. Implementations must not let flagged values pollute
	// their history (stationarity preservation).
	Add(v float64) bool
	// Score returns the outlier score of the most recent Add; larger means
	// more anomalous. The scale is detector specific, but scores are
	// always finite (signals travel through JSON, which rejects NaN/Inf);
	// DegenerateScore marks the unbounded any-change-is-an-outlier case.
	Score() float64
	// Ready reports whether enough history has accumulated to flag.
	Ready() bool
}

// --- Modified z-score (Iglewicz & Hoaglin) ---

// ZScoreDetector flags values whose modified z-score based on the median and
// MAD of the history exceeds Threshold. The conventional cutoff is 3.5.
type ZScoreDetector struct {
	// Threshold is the |modified z| cutoff; 3.5 if zero.
	Threshold float64
	// MaxHistory bounds the history length; 0 means DefaultMaxHistory.
	MaxHistory int

	hist  []float64
	score float64

	// allSame fast path: most monitored series sit at a constant value
	// for long stretches; tracking that avoids O(n log n) median work.
	allSame bool
	sameVal float64
}

// DefaultMaxHistory bounds detector history so long-running series adapt to
// slow drift while staying robust to outliers.
const DefaultMaxHistory = 96

const zScoreConsistency = 0.6745 // E[MAD]/σ for the normal distribution

// DegenerateScore is the score assigned when a constant history makes any
// differing value an outlier (zero MAD and zero mean absolute deviation).
// It is a finite stand-in for +Inf: it sorts above every real score, and —
// unlike Inf — survives encoding/json, which rejects non-finite floats
// (an Inf score silently truncated API verdict bodies and failed snapshot
// writes).
const DegenerateScore = math.MaxFloat64

// NewZScore returns a detector with the conventional 3.5 cutoff.
func NewZScore() *ZScoreDetector { return &ZScoreDetector{} }

func (d *ZScoreDetector) threshold() float64 {
	if d.Threshold == 0 {
		return 3.5
	}
	return d.Threshold
}

func (d *ZScoreDetector) maxHistory() int {
	if d.MaxHistory == 0 {
		return DefaultMaxHistory
	}
	return d.MaxHistory
}

// Ready reports whether the detector has MinObservations of history.
func (d *ZScoreDetector) Ready() bool { return len(d.hist) >= MinObservations }

// Score returns the |modified z| of the last added value.
func (d *ZScoreDetector) Score() float64 { return d.score }

// Add appends v and reports whether it is an outlier. Outliers are not
// added to the history.
func (d *ZScoreDetector) Add(v float64) bool {
	if !d.Ready() {
		if len(d.hist) == 0 {
			d.allSame, d.sameVal = true, v
		} else if v != d.sameVal {
			d.allSame = false
		}
		d.hist = append(d.hist, v)
		d.score = 0
		return false
	}
	if d.allSame && v == d.sameVal {
		d.score = 0
		d.push(v)
		return false
	}
	med := median(d.hist)
	mad := medianAbsDev(d.hist, med)
	if mad == 0 {
		// Iglewicz–Hoaglin fallback: use the mean absolute deviation.
		meanAD := meanAbsDev(d.hist, med)
		if meanAD == 0 {
			// Degenerate constant history: any different value is an
			// outlier once ready.
			if v != med {
				d.score = DegenerateScore
				return true
			}
			d.score = 0
			d.push(v)
			return false
		}
		d.score = math.Abs(v-med) / (1.253314 * meanAD)
	} else {
		d.score = zScoreConsistency * math.Abs(v-med) / mad
	}
	if d.score > d.threshold() {
		return true
	}
	d.push(v)
	return false
}

func (d *ZScoreDetector) push(v float64) {
	if v != d.sameVal {
		d.allSame = false
	}
	d.hist = append(d.hist, v)
	if max := d.maxHistory(); len(d.hist) > max {
		d.hist = d.hist[len(d.hist)-max:]
	}
}

// --- Bitmap detector (Wei et al.) ---

// BitmapDetector implements the assumption-free anomaly bitmap detector:
// the series is SAX-discretized, bigram frequency bitmaps are computed over
// a lag window (the past) and a lead window (the recent values), and the
// anomaly score is the squared distance between the normalized bitmaps. A
// window is flagged when its score exceeds an adaptive threshold (mean + k·σ
// of past scores).
type BitmapDetector struct {
	// Alphabet is the SAX alphabet size; 4 if zero (the paper's reference
	// implementation default).
	Alphabet int
	// Lead is the lead-window length; 8 if zero.
	Lead int
	// Lag is the lag-window length; 32 if zero.
	Lag int
	// Sigmas is the adaptive threshold multiplier; 3 if zero.
	Sigmas float64

	hist      []float64
	scores    []float64
	lastScore float64

	allSame bool
	sameVal float64
	started bool
}

// NewBitmap returns a detector with reference defaults.
func NewBitmap() *BitmapDetector { return &BitmapDetector{} }

func (d *BitmapDetector) alphabet() int {
	if d.Alphabet == 0 {
		return 4
	}
	return d.Alphabet
}

func (d *BitmapDetector) lead() int {
	if d.Lead == 0 {
		return 8
	}
	return d.Lead
}

func (d *BitmapDetector) lag() int {
	if d.Lag == 0 {
		return 32
	}
	return d.Lag
}

func (d *BitmapDetector) sigmas() float64 {
	if d.Sigmas == 0 {
		return 3
	}
	return d.Sigmas
}

// Ready reports whether enough history has accumulated.
func (d *BitmapDetector) Ready() bool {
	need := d.lead() + 4
	if need < MinObservations {
		need = MinObservations
	}
	return len(d.hist) >= need
}

// Score returns the bitmap distance of the most recent Add.
func (d *BitmapDetector) Score() float64 { return d.lastScore }

// Add appends v and reports whether it is an outlier. Flagged values are
// removed from history to preserve stationarity.
func (d *BitmapDetector) Add(v float64) bool {
	if !d.started {
		d.started, d.allSame, d.sameVal = true, true, v
	} else if v != d.sameVal {
		d.allSame = false
	}
	if d.allSame && len(d.hist) >= MinObservations {
		// Constant series: zero score, never an outlier, O(1).
		d.hist = append(d.hist, v)
		d.scores = append(d.scores, 0)
		d.lastScore = 0
		if len(d.hist) > 4*DefaultMaxHistory {
			d.hist = d.hist[len(d.hist)-2*DefaultMaxHistory:]
			d.scores = d.scores[len(d.scores)-2*DefaultMaxHistory:]
		}
		return false
	}
	d.hist = append(d.hist, v)
	if len(d.hist) < d.lead()+4 || len(d.hist) < MinObservations {
		d.lastScore = 0
		return false
	}
	lead := d.hist[len(d.hist)-d.lead():]
	lagStart := len(d.hist) - d.lead() - d.lag()
	if lagStart < 0 {
		lagStart = 0
	}
	lag := d.hist[lagStart : len(d.hist)-d.lead()]
	d.lastScore = bitmapDistance(lag, lead, d.alphabet())

	outlier := false
	if len(d.scores) >= MinObservations {
		m, s := meanStd(d.scores)
		if d.lastScore > m+d.sigmas()*s && d.lastScore > 1e-12 {
			outlier = true
		}
	}
	if outlier {
		// Remove the offending value so persistent shifts keep flagging.
		d.hist = d.hist[:len(d.hist)-1]
		return true
	}
	d.scores = append(d.scores, d.lastScore)
	if len(d.scores) > 4*DefaultMaxHistory {
		d.scores = d.scores[len(d.scores)-2*DefaultMaxHistory:]
	}
	if len(d.hist) > 4*DefaultMaxHistory {
		d.hist = d.hist[len(d.hist)-2*DefaultMaxHistory:]
	}
	return false
}

// bitmapDistance computes the squared distance between the normalized
// bigram frequency bitmaps of the SAX words of the two windows. Values are
// z-normalized with the *lag* window's statistics so that a level shift in
// the lead window pushes its values into extreme symbols instead of
// re-centering the discretization around the shift.
func bitmapDistance(lag, lead []float64, alphabet int) float64 {
	if len(lag) == 0 || len(lead) == 0 {
		return 0
	}
	m, s := meanStd(lag)
	if s == 0 {
		// Constant lag window: any deviation in the lead window is scaled
		// against a nominal spread so different values land in extreme
		// symbols while identical values score zero.
		allEqual := true
		for _, v := range lead {
			if v != m {
				allEqual = false
				break
			}
		}
		if allEqual {
			return 0
		}
		s = math.Max(1e-9, math.Abs(m)*1e-6)
	}
	sym := func(v float64) int { return saxSymbol((v-m)/s, alphabet) }
	lagBM := bigramBitmap(lag, sym, alphabet)
	leadBM := bigramBitmap(lead, sym, alphabet)
	var dist float64
	for i := range lagBM {
		diff := lagBM[i] - leadBM[i]
		dist += diff * diff
	}
	return dist
}

// gaussianBreakpoints per SAX for alphabet sizes 2..8.
var gaussianBreakpoints = map[int][]float64{
	2: {0},
	3: {-0.43, 0.43},
	4: {-0.67, 0, 0.67},
	5: {-0.84, -0.25, 0.25, 0.84},
	6: {-0.97, -0.43, 0, 0.43, 0.97},
	7: {-1.07, -0.57, -0.18, 0.18, 0.57, 1.07},
	8: {-1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15},
}

func saxSymbol(z float64, alphabet int) int {
	bps, ok := gaussianBreakpoints[alphabet]
	if !ok {
		bps = gaussianBreakpoints[4]
		alphabet = 4
	}
	for i, bp := range bps {
		if z < bp {
			return i
		}
	}
	return alphabet - 1
}

func bigramBitmap(window []float64, sym func(float64) int, alphabet int) []float64 {
	bm := make([]float64, alphabet*alphabet)
	if len(window) < 2 {
		return bm
	}
	var total float64
	for i := 1; i < len(window); i++ {
		a, b := sym(window[i-1]), sym(window[i])
		bm[a*alphabet+b]++
		total++
	}
	if total > 0 {
		// Normalize to a probability distribution so window lengths do not
		// bias the distance.
		for i := range bm {
			bm[i] /= total
		}
	}
	return bm
}

// --- small statistics helpers ---

func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	copy(tmp, xs)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

func medianAbsDev(xs []float64, med float64) float64 {
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return median(devs)
}

func meanAbsDev(xs []float64, med float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x - med)
	}
	return sum / float64(len(xs))
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Median exposes the median for callers that need summary statistics.
func Median(xs []float64) float64 { return median(xs) }

// MeanStd exposes mean and standard deviation.
func MeanStd(xs []float64) (float64, float64) { return meanStd(xs) }
