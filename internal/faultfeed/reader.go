package faultfeed

import (
	"fmt"
	"io"
	"math/rand"
)

// Reader wraps an io.Reader with byte-level fault injection, for driving
// the binary codecs (MRTReader, BinaryReader) through the failure modes a
// real archive download exhibits: torn/short reads (the transport returns
// fewer bytes than asked — legal for io.Reader, and exactly what exposes
// codecs that forget io.ReadFull), truncation at an arbitrary byte offset
// (a connection cut mid-record must surface io.ErrUnexpectedEOF, not a
// clean io.EOF), and a transient error at an offset.
type Reader struct {
	// TearProb short-changes a Read call with that probability,
	// returning between 1 and MaxTear bytes (default 1).
	TearProb float64
	MaxTear  int

	// TruncateAt, if >= 0, ends the stream with io.EOF after that many
	// bytes, as if the upstream connection closed. -1 disables.
	TruncateAt int64

	// ErrAt, if >= 0, injects a transient error once after that many
	// bytes; subsequent reads continue from where the stream left off.
	ErrAt int64

	r      io.Reader
	rng    *rand.Rand
	off    int64
	errved bool
}

// NewReader wraps r; truncateAt < 0 disables truncation.
func NewReader(r io.Reader, seed int64, truncateAt int64) *Reader {
	return &Reader{r: r, rng: rand.New(rand.NewSource(seed)), TruncateAt: truncateAt, ErrAt: -1}
}

// Read implements io.Reader.
func (f *Reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if f.TruncateAt >= 0 && f.off >= f.TruncateAt {
		return 0, io.EOF
	}
	if f.ErrAt >= 0 && !f.errved && f.off >= f.ErrAt {
		f.errved = true
		return 0, Transient(fmt.Errorf("%w: stream break at byte %d", ErrInjected, f.off))
	}
	n := len(p)
	if f.TruncateAt >= 0 && f.off+int64(n) > f.TruncateAt {
		n = int(f.TruncateAt - f.off)
	}
	if f.ErrAt >= 0 && !f.errved && f.off+int64(n) > f.ErrAt {
		n = int(f.ErrAt - f.off)
		if n == 0 {
			f.errved = true
			return 0, Transient(fmt.Errorf("%w: stream break at byte %d", ErrInjected, f.off))
		}
	}
	if f.TearProb > 0 && f.rng.Float64() < f.TearProb {
		max := f.MaxTear
		if max <= 0 {
			max = 1
		}
		if tear := 1 + f.rng.Intn(max); tear < n {
			n = tear
		}
	}
	n, err := f.r.Read(p[:n])
	f.off += int64(n)
	return n, err
}
