package faultfeed

import (
	"io"
	"net"
	"testing"
)

// TestProxyKillAfterBytes pins the flaky-conn proxy contract: the i-th
// accepted connection is cut after its byte budget of upstream data, and
// connections past the schedule flow untouched.
func TestProxyKillAfterBytes(t *testing.T) {
	// Upstream writes 1000 bytes then holds the connection open.
	up, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	go func() {
		for {
			c, err := up.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				c.Write(payload)
				io.Copy(io.Discard, c) // hold open until the peer closes
				c.Close()
			}(c)
		}
	}()

	p := &Proxy{Upstream: up.Addr().String(), KillAfterBytes: []int64{100}}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// First connection: cut after exactly 100 upstream bytes.
	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(c1)
	c1.Close()
	if len(got) != 100 {
		t.Fatalf("first connection delivered %d bytes; want 100", len(got))
	}

	// Second connection: past the schedule, everything flows.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatalf("second connection truncated: %v", err)
	}
	c2.Close()
	if p.Accepted() != 2 {
		t.Fatalf("Accepted = %d; want 2", p.Accepted())
	}
}
