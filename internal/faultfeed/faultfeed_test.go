package faultfeed

import (
	"errors"
	"io"
	"reflect"
	"sort"
	"testing"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// mkUpdates builds n updates with strictly increasing timestamps, so any
// byte-identical adjacent pair in a faulted stream is an injected
// duplicate and sorting by Time recovers the original order exactly.
func mkUpdates(n int) []bgp.Update {
	out := make([]bgp.Update, n)
	for i := range out {
		out[i] = bgp.Update{
			Time:   int64(i + 1),
			PeerIP: 0x0a000001,
			PeerAS: bgp.ASN(100 + i%7),
			Type:   bgp.Announce,
			Prefix: trie.MakePrefix(uint32(i)<<8, 24),
			ASPath: bgp.Path{bgp.ASN(100 + i%7), 200, 300},
			MED:    uint32(i),
		}
	}
	return out
}

func mkTraces(n int) []*traceroute.Traceroute {
	out := make([]*traceroute.Traceroute, n)
	for i := range out {
		out[i] = &traceroute.Traceroute{
			Time: int64(i + 1),
			Src:  0x01000001,
			Dst:  uint32(0x04000000 + i),
			Hops: []traceroute.Hop{{IP: 0x02000001, TTL: 1}, {IP: 0x03000001, TTL: 2}},
		}
	}
	return out
}

// drainUpdates reads src to EOF, retrying transient errors in place, and
// returns the delivered records plus the number of transient errors seen.
func drainUpdates(t *testing.T, src bgp.UpdateSource) ([]bgp.Update, int) {
	t.Helper()
	var out []bgp.Update
	transients := 0
	for {
		u, err := src.Read()
		if err == io.EOF {
			return out, transients
		}
		if err != nil {
			var tmp interface{ Temporary() bool }
			if errors.As(err, &tmp) && tmp.Temporary() {
				transients++
				if transients > 10000 {
					t.Fatal("transient errors never stop")
				}
				continue
			}
			t.Fatalf("unexpected permanent error: %v", err)
		}
		out = append(out, u)
	}
}

func TestFaultsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, DupProb: 0.2, ReorderProb: 0.3, ReorderDepth: 4, ErrProb: 0.05}
	a, aerrs := drainUpdates(t, Updates(bgp.NewSliceSource(mkUpdates(200)), cfg))
	b, berrs := drainUpdates(t, Updates(bgp.NewSliceSource(mkUpdates(200)), cfg))
	if !reflect.DeepEqual(a, b) || aerrs != berrs {
		t.Fatalf("same seed produced different schedules: %d vs %d records, %d vs %d errors",
			len(a), len(b), aerrs, berrs)
	}
	c, _ := drainUpdates(t, Updates(bgp.NewSliceSource(mkUpdates(200)), Config{Seed: 8, DupProb: 0.2, ReorderProb: 0.3, ReorderDepth: 4}))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDupReorderNonLossy(t *testing.T) {
	base := mkUpdates(500)
	const depth = 5
	cfg := Config{Seed: 42, DupProb: 0.15, ReorderProb: 0.25, ReorderDepth: depth, ErrEvery: 97}
	got, transients := drainUpdates(t, Updates(bgp.NewSliceSource(base), cfg))
	if transients == 0 {
		t.Fatal("expected scheduled transient errors")
	}

	// Strip adjacent byte-identical duplicates; with strictly increasing
	// base timestamps these are exactly the injected duplicates.
	var dedup []bgp.Update
	dups := 0
	for i, u := range got {
		if i > 0 && reflect.DeepEqual(u, dedup[len(dedup)-1]) {
			dups++
			continue
		}
		dedup = append(dedup, u)
	}
	if dups == 0 {
		t.Fatal("expected injected duplicates")
	}
	if len(dedup) != len(base) {
		t.Fatalf("lossy schedule: %d distinct records, want %d", len(dedup), len(base))
	}

	// Displacement bound: record originally at position i must appear
	// within depth positions of i.
	reordered := 0
	for i, u := range dedup {
		orig := int(u.Time) - 1
		if d := orig - i; d > depth || d < -depth {
			t.Fatalf("record %d displaced %d positions (depth %d)", orig, d, depth)
		}
		if orig != i {
			reordered++
		}
	}
	if reordered == 0 {
		t.Fatal("expected reordered records")
	}

	sort.SliceStable(dedup, func(i, j int) bool { return dedup[i].Time < dedup[j].Time })
	if !reflect.DeepEqual(dedup, base) {
		t.Fatal("sorting deduped stream did not recover the input")
	}
}

func TestClockSkewBounded(t *testing.T) {
	base := mkUpdates(300)
	// Spread timestamps so skew is visible against the ±3s bound.
	for i := range base {
		base[i].Time = int64(i) * 100
	}
	cfg := Config{Seed: 3, SkewProb: 0.5, SkewMaxSec: 3}
	got, _ := drainUpdates(t, Updates(bgp.NewSliceSource(base), cfg))
	if len(got) != len(base) {
		t.Fatalf("got %d records, want %d", len(got), len(base))
	}
	skewed := 0
	for i, u := range got {
		d := u.Time - base[i].Time
		if d < -3 || d > 3 {
			t.Fatalf("record %d skewed by %d, bound 3", i, d)
		}
		if d != 0 {
			skewed++
		}
	}
	if skewed == 0 {
		t.Fatal("expected skewed timestamps")
	}
}

func TestHardErrorIsPermanent(t *testing.T) {
	cfg := Config{Seed: 1, HardErrAfter: 10}
	src := Updates(bgp.NewSliceSource(mkUpdates(50)), cfg)
	for i := 0; i < 10; i++ {
		if _, err := src.Read(); err != nil {
			t.Fatalf("record %d: unexpected error %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		_, err := src.Read()
		if !errors.Is(err, ErrFeedDown) {
			t.Fatalf("want ErrFeedDown, got %v", err)
		}
		var tmp interface{ Temporary() bool }
		if errors.As(err, &tmp) && tmp.Temporary() {
			t.Fatal("hard error must not be Temporary")
		}
	}
}

func TestTraceFaultsNonLossy(t *testing.T) {
	base := mkTraces(200)
	cfg := Config{Seed: 11, DupProb: 0.2, ReorderProb: 0.3, ReorderDepth: 3}
	src := Traces(&traceSlice{traces: base}, cfg)
	var got []*traceroute.Traceroute
	for {
		tr, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		got = append(got, tr)
	}
	var dedup []*traceroute.Traceroute
	for i, tr := range got {
		if i > 0 && reflect.DeepEqual(tr, dedup[len(dedup)-1]) {
			// Injected duplicates must be copies, not aliases: the
			// pipeline may hand both to independent consumers.
			if tr == dedup[len(dedup)-1] {
				t.Fatal("duplicate trace aliases the original")
			}
			continue
		}
		dedup = append(dedup, tr)
	}
	if len(dedup) != len(base) {
		t.Fatalf("lossy schedule: %d distinct traces, want %d", len(dedup), len(base))
	}
	sort.SliceStable(dedup, func(i, j int) bool { return dedup[i].Time < dedup[j].Time })
	if !reflect.DeepEqual(dedup, base) {
		t.Fatal("sorting deduped stream did not recover the input")
	}
}

func TestReplayableUpdatesResume(t *testing.T) {
	base := mkUpdates(100)
	f := NewReplayableUpdates(base, ReplayConfig{})
	src, err := f.Open(41)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	got, _ := drainUpdates(t, src)
	if len(got) != 60 || got[0].Time != 41 {
		t.Fatalf("resume at 41: got %d records starting at %d, want 60 starting at 41",
			len(got), got[0].Time)
	}
	if f.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", f.Opens())
	}
}

func TestReplayableUpdatesFailSchedule(t *testing.T) {
	base := mkUpdates(100)
	f := NewReplayableUpdates(base, ReplayConfig{OpenErrs: 1, FailOpens: 1, FailAfter: 10})
	// First open fails outright, transiently.
	if _, err := f.Open(0); err == nil {
		t.Fatal("first open should fail")
	} else {
		var tmp interface{ Temporary() bool }
		if !errors.As(err, &tmp) || !tmp.Temporary() {
			t.Fatalf("open error should be transient, got %v", err)
		}
	}
	// Second open succeeds but breaks after 10 records.
	src, err := f.Open(0)
	if err != nil {
		t.Fatalf("second open: %v", err)
	}
	n := 0
	for {
		_, err := src.Read()
		if err != nil {
			var tmp interface{ Temporary() bool }
			if !errors.As(err, &tmp) || !tmp.Temporary() {
				t.Fatalf("want transient break, got %v", err)
			}
			break
		}
		n++
		if n > 20 {
			t.Fatal("second open never broke")
		}
	}
	if n != 10 {
		t.Fatalf("broke after %d records, want 10", n)
	}
	// Third open is clean end to end.
	src, err = f.Open(0)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	got, transients := drainUpdates(t, src)
	if transients != 0 || len(got) != len(base) {
		t.Fatalf("third open: %d records, %d transients; want %d and 0",
			len(got), transients, len(base))
	}
}

func TestReplayableTracesResume(t *testing.T) {
	base := mkTraces(50)
	f := NewReplayableTraces(base, ReplayConfig{})
	src, err := f.Open(26)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	n := 0
	for {
		tr, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if tr.Time < 26 {
			t.Fatalf("got trace at %d before resume point 26", tr.Time)
		}
		n++
	}
	if n != 25 {
		t.Fatalf("resumed %d traces, want 25", n)
	}
}

func TestReaderTornReadsPreserveBytes(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	r := NewReader(bytesReader(src), 5, -1)
	r.TearProb = 0.7
	r.MaxTear = 3
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	if !reflect.DeepEqual(got, src) {
		t.Fatal("torn reads corrupted the byte stream")
	}
}

func TestReaderTruncation(t *testing.T) {
	src := make([]byte, 100)
	r := NewReader(bytesReader(src), 1, 37)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	if len(got) != 37 {
		t.Fatalf("read %d bytes past truncation point 37", len(got))
	}
	// EOF is sticky.
	if n, err := r.Read(make([]byte, 8)); n != 0 || err != io.EOF {
		t.Fatalf("post-truncation read: n=%d err=%v", n, err)
	}
}

func TestReaderTransientErrAt(t *testing.T) {
	src := make([]byte, 100)
	for i := range src {
		src[i] = byte(i)
	}
	r := NewReader(bytesReader(src), 1, -1)
	r.ErrAt = 40
	buf := make([]byte, 16)
	read := 0
	sawErr := false
	for read < 100 {
		n, err := r.Read(buf)
		read += n
		if err != nil {
			if sawErr {
				t.Fatalf("second error: %v", err)
			}
			var tmp interface{ Temporary() bool }
			if !errors.As(err, &tmp) || !tmp.Temporary() {
				t.Fatalf("want transient error, got %v", err)
			}
			if read != 40 {
				t.Fatalf("error at byte %d, want 40", read)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("ErrAt never fired")
	}
}

// bytesReader avoids importing bytes just for a reader.
type sliceReader struct {
	b []byte
	i int
}

func bytesReader(b []byte) *sliceReader { return &sliceReader{b: b} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// TestStallPreemptedByStop is the regression test for shutdown being held
// hostage by an in-progress stall: with Stop wired, closing it must wake
// the stalled Read immediately and surface ErrStallInterrupted as a
// permanent (non-retryable) error, long before StallDur elapses.
func TestStallPreemptedByStop(t *testing.T) {
	stop := make(chan struct{})
	f := Updates(bgp.NewSliceSource(mkUpdates(10)), Config{
		Seed:      1,
		StallProb: 1, // every delivery stalls
		StallDur:  time.Hour,
		Stop:      stop,
	})
	type result struct {
		u   bgp.Update
		err error
	}
	done := make(chan result, 1)
	go func() {
		u, err := f.Read()
		done <- result{u, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("Read returned before stop: %+v, %v", r.u, r.err)
	case <-time.After(20 * time.Millisecond):
	}
	start := time.Now()
	close(stop)
	select {
	case r := <-done:
		if !errors.Is(r.err, ErrStallInterrupted) {
			t.Fatalf("interrupted stall returned %v; want ErrStallInterrupted", r.err)
		}
		var tmp interface{ Temporary() bool }
		if errors.As(r.err, &tmp) && tmp.Temporary() {
			t.Fatal("ErrStallInterrupted must be permanent, or retry policies resurrect a stopping feed")
		}
		if woke := time.Since(start); woke > 5*time.Second {
			t.Fatalf("stall took %v to notice stop", woke)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled Read never woke after stop closed (shutdown held hostage)")
	}
	// Subsequent reads re-enter the stall and are interrupted right away
	// by the already-closed channel — the feed stays dead while stopping.
	if _, err := f.Read(); !errors.Is(err, ErrStallInterrupted) {
		t.Fatalf("post-stop Read returned %v; want ErrStallInterrupted", err)
	}
}

// TestStallWithoutStopCompletes pins the compatible default: with no Stop
// channel configured, a stall sleeps its full duration and delivery
// proceeds.
func TestStallWithoutStopCompletes(t *testing.T) {
	f := Updates(bgp.NewSliceSource(mkUpdates(3)), Config{
		Seed:      1,
		StallProb: 1,
		StallDur:  time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		if _, err := f.Read(); err != nil {
			t.Fatalf("stalled delivery %d failed: %v", i, err)
		}
	}
	if _, err := f.Read(); err != io.EOF {
		t.Fatalf("want EOF after drain, got %v", err)
	}
}
