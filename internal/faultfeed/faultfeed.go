// Package faultfeed provides deterministic, seeded fault injection for the
// project's feed interfaces. It wraps a bgp.UpdateSource or a traceroute
// feed and perturbs delivery the way real third-party feeds do (paper
// context: BGPStream collectors and RIPE Atlas result streams): stalls,
// duplicate delivery, bounded reordering, clock skew, transient errors that
// a well-behaved consumer should retry, and hard errors that kill the feed.
// A byte-level Reader injects torn (short) reads and mid-record truncation
// under the binary codecs.
//
// Every injector is driven by its own math/rand PRNG seeded from
// Config.Seed, so a fault schedule is a pure function of (seed, input
// stream): tests replay the exact same faults on every run, which is what
// makes the differential harness (faulted run vs. clean run, sharded vs.
// serial engine) meaningful.
//
// Fault composition order matters for absorbability. Skew is applied when a
// record first leaves the reorder stage, and duplicates are injected last,
// so an injected duplicate is always byte-identical to its original and
// delivered adjacent to it — transport-level redelivery semantics, which
// the pipeline's adjacent-dedup stage can remove without touching
// protocol-level BGP duplicates (those differ in arrival time and feed the
// burst detector). Reordering displaces a record by at most
// Config.ReorderDepth positions of the duplicate-free stream: a dup-pen
// delivery can defer a due held record by one extra raw-stream slot, so a
// consumer must strip adjacent duplicates first, after which a
// (Depth+1)-slot ordering buffer recovers the original order exactly (the
// order the pipeline's absorption stages apply).
package faultfeed

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
)

// TraceSource produces traceroutes in time order (io.EOF ends the feed).
// It mirrors rrr.TraceSource without importing the facade package.
type TraceSource interface {
	Read() (*traceroute.Traceroute, error)
}

// TransientError marks an injected (or wrapped) failure as retryable. It
// implements the Temporary() contract the pipeline's retry policy checks,
// so the supervisor layer never needs to import this package.
type TransientError struct {
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return fmt.Sprintf("transient: %v", e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Temporary reports that the failure is worth retrying.
func (e *TransientError) Temporary() bool { return true }

// Transient wraps err as a retryable failure.
func Transient(err error) error { return &TransientError{Err: err} }

// ErrInjected is the base cause of faults injected by this package.
var ErrInjected = errors.New("faultfeed: injected fault")

// ErrFeedDown is the hard (non-retryable) error a source returns after
// Config.HardErrAfter records.
var ErrFeedDown = errors.New("faultfeed: feed down")

// ErrStallInterrupted is the permanent error a stalled Read returns when
// Config.Stop fires mid-stall: the consumer is shutting down, so the
// record that would have followed the stall is deliberately not read.
var ErrStallInterrupted = errors.New("faultfeed: stall interrupted by stop")

// Config describes one feed's fault schedule. Probabilities are per
// delivered record in [0,1]; zero values disable the corresponding fault.
type Config struct {
	// Seed drives the injector's private PRNG. The same seed over the
	// same input stream reproduces the same fault schedule.
	Seed int64

	// StallProb delays a delivery by StallDur before returning it,
	// modeling a feed that hangs mid-stream.
	StallProb float64
	StallDur  time.Duration

	// Stop, when non-nil, preempts an in-progress stall: a close of this
	// channel wakes the stalled Read immediately, which returns
	// ErrStallInterrupted (permanent, so a retry policy lets the feed
	// die) instead of holding shutdown hostage for up to StallDur.
	Stop <-chan struct{}

	// DupProb re-delivers a record: the copy is byte-identical and
	// arrives immediately after the original (at-least-once transport).
	DupProb float64

	// ReorderProb holds a record back so that up to ReorderDepth
	// subsequent records overtake it. Displacement is bounded by
	// ReorderDepth positions; nothing is lost.
	ReorderProb  float64
	ReorderDepth int

	// SkewProb perturbs a record's timestamp by a uniform offset in
	// [-SkewMaxSec, +SkewMaxSec], modeling sender clock drift.
	SkewProb   float64
	SkewMaxSec int64

	// ErrProb injects a TransientError between records (nothing is
	// consumed, so a retrying consumer loses no data). ErrEvery — if
	// positive — instead injects one deterministic transient error
	// before every ErrEvery-th delivery.
	ErrProb  float64
	ErrEvery int

	// HardErrAfter, if positive, makes the source return a permanent
	// (non-Temporary) error once that many records have been delivered,
	// and on every Read thereafter.
	HardErrAfter int
}

// injector holds the staged fault state shared by both feed kinds. The
// element type carries its own clone/timestamp accessors so updates
// (values) and traceroutes (pointers) share one implementation.
type injector[T any] struct {
	cfg       Config
	rng       *rand.Rand
	read      func() (T, error)
	clone     func(T) T
	shiftTime func(T, int64) T

	hold       []T   // reorder pen: records overtaken by later ones
	holdDue    []int // deliveries remaining before the held record frees
	dup        []T   // pending adjacent duplicate (0 or 1 element)
	pendingErr error // source error deferred until the pen drains
	delivered  int
	sinceErr   int
}

func newInjector[T any](cfg Config, read func() (T, error), clone func(T) T, shift func(T, int64) T) *injector[T] {
	return &injector[T]{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		read:      read,
		clone:     clone,
		shiftTime: shift,
	}
}

func (in *injector[T]) hit(p float64) bool {
	return p > 0 && in.rng.Float64() < p
}

// pull reads the next record from the wrapped source through the reorder
// stage, applying skew as records leave it. The error return is the
// source's own error, passed through unchanged.
func (in *injector[T]) pull() (T, bool, error) {
	var zero T
	// Release any held record whose delay expired.
	for i := range in.hold {
		if in.holdDue[i] <= 0 {
			rec := in.hold[i]
			in.hold = append(in.hold[:i], in.hold[i+1:]...)
			in.holdDue = append(in.holdDue[:i], in.holdDue[i+1:]...)
			return rec, true, nil
		}
	}
	for {
		if in.pendingErr != nil {
			// Drain the pen in held order before surfacing the
			// deferred source error, so no record the injector was
			// holding is ever lost. The error is delivered once;
			// a retrying consumer then reads the source again.
			if len(in.hold) > 0 {
				rec := in.hold[0]
				in.hold = in.hold[1:]
				in.holdDue = in.holdDue[1:]
				return rec, true, nil
			}
			err := in.pendingErr
			in.pendingErr = nil
			return zero, false, err
		}
		rec, err := in.read()
		if err != nil {
			if len(in.hold) > 0 {
				in.pendingErr = err
				held := in.hold[0]
				in.hold = in.hold[1:]
				in.holdDue = in.holdDue[1:]
				return held, true, nil
			}
			return zero, false, err
		}
		rec = in.applySkew(rec)
		if in.hit(in.cfg.ReorderProb) && len(in.hold) < in.cfg.ReorderDepth {
			in.hold = append(in.hold, rec)
			in.holdDue = append(in.holdDue, 1+in.rng.Intn(in.cfg.ReorderDepth))
			continue
		}
		return rec, true, nil
	}
}

func (in *injector[T]) applySkew(rec T) T {
	if in.hit(in.cfg.SkewProb) && in.cfg.SkewMaxSec > 0 {
		delta := in.rng.Int63n(2*in.cfg.SkewMaxSec+1) - in.cfg.SkewMaxSec
		return in.shiftTime(rec, delta)
	}
	return rec
}

// Next delivers the next faulted record.
func (in *injector[T]) Next() (T, error) {
	var zero T
	if in.hit(in.cfg.StallProb) && in.cfg.StallDur > 0 {
		// Preemptible stall, matching the pipeline's sleepOrStop: a bare
		// time.Sleep here held shutdown hostage for up to StallDur.
		if !in.sleepOrStop(in.cfg.StallDur) {
			return zero, ErrStallInterrupted
		}
	}
	// Pending adjacent duplicate goes out first and is never re-duped.
	if len(in.dup) > 0 {
		rec := in.dup[0]
		in.dup = in.dup[:0]
		in.afterDeliver()
		return rec, nil
	}
	if in.cfg.HardErrAfter > 0 && in.delivered >= in.cfg.HardErrAfter {
		return zero, fmt.Errorf("%w after %d records", ErrFeedDown, in.delivered)
	}
	// Transient errors are injected between records: nothing is consumed,
	// so a consumer that retries the same source loses no data.
	if in.cfg.ErrEvery > 0 && in.sinceErr >= in.cfg.ErrEvery {
		in.sinceErr = 0
		return zero, Transient(fmt.Errorf("%w: scheduled stream break", ErrInjected))
	}
	if in.hit(in.cfg.ErrProb) {
		in.sinceErr = 0
		return zero, Transient(fmt.Errorf("%w: random stream break", ErrInjected))
	}
	rec, ok, err := in.pull()
	if !ok {
		return zero, err
	}
	if in.hit(in.cfg.DupProb) {
		in.dup = append(in.dup, in.clone(rec))
	}
	in.afterDeliver()
	return rec, nil
}

// sleepOrStop sleeps for d, or returns false early if cfg.Stop fires
// first.
func (in *injector[T]) sleepOrStop(d time.Duration) bool {
	if in.cfg.Stop == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-in.cfg.Stop:
		return false
	}
}

func (in *injector[T]) afterDeliver() {
	in.delivered++
	in.sinceErr++
	// Age the reorder pen: each delivery brings held records one step
	// closer to release, bounding displacement by ReorderDepth.
	for i := range in.holdDue {
		in.holdDue[i]--
	}
}

// cloneUpdate deep-copies an update so a duplicate delivery shares no
// mutable state with the original.
func cloneUpdate(u bgp.Update) bgp.Update {
	u.ASPath = u.ASPath.Clone()
	u.Communities = u.Communities.Clone()
	return u
}

func shiftUpdate(u bgp.Update, d int64) bgp.Update {
	u.Time += d
	return u
}

func cloneTrace(t *traceroute.Traceroute) *traceroute.Traceroute {
	return t.Clone()
}

func shiftTrace(t *traceroute.Traceroute, d int64) *traceroute.Traceroute {
	out := *t
	out.Time += d
	out.Hops = t.Hops
	return &out
}

// UpdateFeed is a fault-injecting bgp.UpdateSource.
type UpdateFeed struct {
	in *injector[bgp.Update]
}

// Updates wraps src with the fault schedule in cfg.
func Updates(src bgp.UpdateSource, cfg Config) *UpdateFeed {
	return &UpdateFeed{in: newInjector(cfg, src.Read, cloneUpdate, shiftUpdate)}
}

// Read implements bgp.UpdateSource.
func (f *UpdateFeed) Read() (bgp.Update, error) { return f.in.Next() }

// TraceFeed is a fault-injecting traceroute source.
type TraceFeed struct {
	in *injector[*traceroute.Traceroute]
}

// Traces wraps src with the fault schedule in cfg.
func Traces(src TraceSource, cfg Config) *TraceFeed {
	return &TraceFeed{in: newInjector(cfg, src.Read, cloneTrace, shiftTrace)}
}

// Read implements the traceroute feed interface.
func (f *TraceFeed) Read() (*traceroute.Traceroute, error) { return f.in.Next() }
