package faultfeed

import (
	"io"
	"net"
	"sync"
)

// Proxy is a deterministic flaky TCP proxy for exercising network feed
// clients: it forwards each accepted connection to Upstream, killing the
// n-th connection after its configured byte budget so the client sees a
// mid-stream reset — typically a torn frame. Connections beyond the
// budget list pass through untouched, which is what lets a differential
// test force an exact number of disconnects and then let the stream
// finish clean.
type Proxy struct {
	// Upstream is the real server's address.
	Upstream string

	// KillAfterBytes gives the i-th accepted connection's upstream→client
	// byte budget; the connection is reset once the budget is spent. A
	// zero or negative entry, and any connection past the end of the
	// list, forwards without limit.
	KillAfterBytes []int64

	lis      net.Listener
	mu       sync.Mutex
	accepted int
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// Start listens on a fresh loopback port and begins proxying.
func (p *Proxy) Start() error {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	p.lis = lis
	p.conns = make(map[net.Conn]struct{})
	p.wg.Add(1)
	go p.acceptLoop()
	return nil
}

// Addr returns the proxy's listen address; clients dial this instead of
// Upstream.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Accepted returns how many connections the proxy has accepted so far.
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// Close stops the listener and drops every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.lis.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		n := p.accepted
		p.accepted++
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.proxyConn(conn, p.budget(n))
	}
}

func (p *Proxy) budget(n int) int64 {
	if n >= len(p.KillAfterBytes) {
		return -1
	}
	b := p.KillAfterBytes[n]
	if b <= 0 {
		return -1
	}
	return b
}

// proxyConn forwards both directions, counting upstream→client bytes
// against budget (when non-negative) and resetting the pair once spent.
func (p *Proxy) proxyConn(client net.Conn, budget int64) {
	defer p.wg.Done()
	defer func() {
		client.Close()
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
	}()

	upstream, err := net.Dial("tcp", p.Upstream)
	if err != nil {
		return
	}
	defer upstream.Close()

	done := make(chan struct{}, 2)
	// client → upstream: unlimited (handshake bytes are tiny).
	go func() {
		io.Copy(upstream, client)
		done <- struct{}{}
	}()
	// upstream → client: budgeted. The cut lands wherever the byte count
	// says, which is almost always mid-frame — exactly the torn-read
	// shape a real connection reset produces.
	go func() {
		if budget < 0 {
			io.Copy(client, upstream)
		} else {
			io.CopyN(client, upstream, budget)
			client.Close()
			upstream.Close()
		}
		done <- struct{}{}
	}()
	<-done
	// Unblock the other direction and wait for it.
	client.Close()
	upstream.Close()
	<-done
}
