package faultfeed

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
)

// ReplayConfig describes how a replayable feed misbehaves across
// incarnations. A replayable feed models an upstream archive or broker
// that supports resuming from a timestamp: each Open(since) returns a
// fresh source over the records at or after since, optionally faulted.
type ReplayConfig struct {
	// Faults is applied to every opened source. The per-open seed is
	// Faults.Seed + the open ordinal, so successive incarnations see
	// different (but still deterministic) schedules.
	Faults Config

	// FailOpens makes each of the first FailOpens opened sources return
	// a transient error after FailAfter delivered records (the source's
	// own records, counted post-faults). Opens beyond FailOpens are
	// clean, so a consumer with a retry budget > FailOpens recovers.
	FailOpens int
	FailAfter int

	// OpenErrs makes the first OpenErrs Open calls themselves fail with
	// a transient error before any source is built.
	OpenErrs int
}

// ReplayableUpdates is a restartable BGP feed over a fixed, time-sorted
// update slice. It is safe for concurrent Open calls (the pipeline opens
// from its merge goroutine, tests from others).
type ReplayableUpdates struct {
	mu    sync.Mutex
	base  []bgp.Update
	cfg   ReplayConfig
	opens int
}

// NewReplayableUpdates builds a replayable feed; updates must be sorted by
// Time (the constructor does not sort, preserving intra-timestamp order).
func NewReplayableUpdates(updates []bgp.Update, cfg ReplayConfig) *ReplayableUpdates {
	return &ReplayableUpdates{base: updates, cfg: cfg}
}

// Opens reports how many times Open has been called (including failed
// opens).
func (f *ReplayableUpdates) Opens() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens
}

// Open returns a source over the records with Time >= since, faulted per
// the replay config. The pipeline's supervisor calls it with the open
// window's start time to resume after a transient failure.
func (f *ReplayableUpdates) Open(since int64) (bgp.UpdateSource, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opens++
	if f.opens <= f.cfg.OpenErrs {
		return nil, Transient(fmt.Errorf("%w: open refused (attempt %d)", ErrInjected, f.opens))
	}
	lo := sort.Search(len(f.base), func(i int) bool { return f.base[i].Time >= since })
	cfg := f.perOpen()
	return Updates(bgp.NewSliceSource(f.base[lo:]), cfg), nil
}

func (f *ReplayableUpdates) perOpen() Config {
	cfg := f.cfg.Faults
	cfg.Seed += int64(f.opens)
	if f.opens <= f.cfg.OpenErrs+f.cfg.FailOpens && f.cfg.FailAfter > 0 {
		cfg.ErrEvery = f.cfg.FailAfter
	}
	return cfg
}

// ReplayableTraces is the traceroute twin of ReplayableUpdates.
type ReplayableTraces struct {
	mu    sync.Mutex
	base  []*traceroute.Traceroute
	cfg   ReplayConfig
	opens int
}

// NewReplayableTraces builds a replayable trace feed over a time-sorted
// slice.
func NewReplayableTraces(traces []*traceroute.Traceroute, cfg ReplayConfig) *ReplayableTraces {
	return &ReplayableTraces{base: traces, cfg: cfg}
}

// Opens reports how many times Open has been called.
func (f *ReplayableTraces) Opens() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens
}

// Open returns a source over the traceroutes with Time >= since.
func (f *ReplayableTraces) Open(since int64) (TraceSource, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opens++
	if f.opens <= f.cfg.OpenErrs {
		return nil, Transient(fmt.Errorf("%w: open refused (attempt %d)", ErrInjected, f.opens))
	}
	lo := sort.Search(len(f.base), func(i int) bool { return f.base[i].Time >= since })
	cfg := f.cfg.Faults
	cfg.Seed += int64(f.opens)
	if f.opens <= f.cfg.OpenErrs+f.cfg.FailOpens && f.cfg.FailAfter > 0 {
		cfg.ErrEvery = f.cfg.FailAfter
	}
	return Traces(&traceSlice{traces: f.base[lo:]}, cfg), nil
}

type traceSlice struct {
	traces []*traceroute.Traceroute
	i      int
}

func (s *traceSlice) Read() (*traceroute.Traceroute, error) {
	if s.i >= len(s.traces) {
		return nil, io.EOF
	}
	t := s.traces[s.i]
	s.i++
	return t, nil
}
