package rrr_test

import (
	"fmt"

	"rrr"
	"rrr/internal/bgp"
	"rrr/internal/bordermap"
)

// exampleMapper maps AS n to n.0.0.0/8, the toy plan used across examples.
type exampleMapper struct{}

func (exampleMapper) ASOf(ip uint32) (rrr.ASN, bool) {
	if ip>>24 == 0 {
		return 0, false
	}
	return rrr.ASN(ip >> 24), true
}

func (exampleMapper) IXPOf(uint32) (int, bool) { return 0, false }

// Example walks the full staleness-detection loop: prime, track, stream,
// signal, refresh.
func Example() {
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	mon, err := rrr.NewMonitor(rrr.Options{Mapper: exampleMapper{}, Aliases: aliases})
	if err != nil {
		panic(err)
	}

	ip := func(s string) uint32 {
		v, err := rrr.ParseIP(s)
		if err != nil {
			panic(err)
		}
		return v
	}
	prefix, _ := rrr.ParsePrefix("4.0.0.0/8")
	announce := func(t int64, path ...rrr.ASN) rrr.Update {
		return rrr.Update{Time: t, PeerIP: ip("5.0.0.9"), PeerAS: 5,
			Type: bgp.Announce, Prefix: prefix, ASPath: path}
	}

	// Prime the collector view, then track one corpus traceroute.
	mon.ObserveBGP(announce(0, 5, 2, 3, 4))
	tr := &rrr.Traceroute{Src: ip("1.0.0.1"), Dst: ip("4.0.0.9")}
	for i, h := range []string{"1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9"} {
		tr.Hops = append(tr.Hops, rrr.Hop{TTL: i + 1, IP: ip(h)})
	}
	if err := mon.Track(tr); err != nil {
		panic(err)
	}

	// Quiet windows build detector history; then the overlapping BGP route
	// shifts inside the monitored suffix.
	mon.Advance(45 * 900)
	mon.ObserveBGP(announce(45*900+10, 5, 2, 9, 4))
	sigs := mon.Advance(46 * 900)

	fmt.Printf("signals: %d, stale: %v\n", len(sigs), mon.Stale(tr.Key()))
	fmt.Printf("technique: %v\n", sigs[0].Technique)
	// Output:
	// signals: 1, stale: true
	// technique: BGP AS-paths
}
