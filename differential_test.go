package rrr

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/faultfeed"
)

// diffResult captures everything observable about one pipeline run: the
// exact signal stream plus the monitor's final queryable state.
type diffResult struct {
	sigs     []Signal
	stale    []Key
	counts   map[Technique]int
	windows  int
	revSigs  int
	revPairs int
}

// diffWorkload builds the differential feed: two VPs announcing every
// window for 50 windows with an AS-path shift at 45, a revert at 48 (so
// revocation state is exercised), a three-repeat duplicate burst at 47, and
// a public trace per window. Timestamps are strictly increasing per feed,
// which makes every record unique — so adjacent-dedup can only ever remove
// injected transport duplicates, never protocol-level BGP duplicates.
func diffWorkload(t *testing.T) ([]Update, []*Traceroute) {
	t.Helper()
	var ups []Update
	for w := int64(1); w <= 50; w++ {
		ups = append(ups, announceUpd(t, w*900+3, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))
		path := []ASN{5, 2, 3, 4}
		if w >= 45 && w < 48 {
			path = []ASN{5, 2, 9, 4}
		}
		ups = append(ups, announceUpd(t, w*900+7, "5.0.0.9", 5, "4.0.0.0/8", path))
		if w == 47 {
			// Protocol-level duplicate burst: repeats at distinct times.
			for rep := int64(1); rep <= 3; rep++ {
				ups = append(ups, announceUpd(t, w*900+7+rep*20, "5.0.0.9", 5, "4.0.0.0/8", path))
				ups = append(ups, announceUpd(t, w*900+13+rep*20, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))
			}
		}
	}
	var pubs []*Traceroute
	for w := int64(1); w <= 50; w++ {
		pubs = append(pubs, trace(t, w*900+11, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.8"))
	}
	return ups, pubs
}

// runDifferential drives one pipeline run at the given shard count. With
// faults set, both feeds are wrapped in seeded dup+reorder injectors (a
// non-lossy schedule) and the pipeline's absorption stages — adjacent dedup
// and a reorder buffer matching the injector's depth — are enabled.
func runDifferential(t *testing.T, shards int, faults *faultfeed.Config) diffResult {
	t.Helper()
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	m, err := NewMonitor(Options{
		Config: Config{Shards: shards},
		Mapper: facadeMapper{}, Aliases: aliases,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	m.ObserveBGP(announceUpd(t, 0, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))
	for i := 1; i <= 6; i++ {
		tr := trace(t, 0, fmt.Sprintf("1.0.0.%d", i), fmt.Sprintf("4.0.0.%d", 100+i),
			fmt.Sprintf("1.0.0.%d", 50+i), "2.0.0.1", "3.0.0.1", "4.0.0.2", fmt.Sprintf("4.0.0.%d", 100+i))
		if err := m.Track(tr); err != nil {
			t.Fatal(err)
		}
	}

	ups, pubs := diffWorkload(t)
	cfg := PipelineConfig{
		Updates: bgp.NewSliceSource(ups),
		Traces:  NewTraceSliceSource(pubs),
	}
	if faults != nil {
		fu, ft := *faults, *faults
		ft.Seed++ // independent schedule per feed
		cfg.Updates = faultfeed.Updates(cfg.Updates, fu)
		cfg.Traces = faultfeed.Traces(cfg.Traces, ft)
		cfg.DedupAdjacent = true
		cfg.ReorderWindow = faults.ReorderDepth
	}
	var res diffResult
	cfg.Sink = func(s Signal) { res.sigs = append(res.sigs, s) }
	if err := RunPipeline(context.Background(), m, cfg); err != nil {
		t.Fatal(err)
	}
	res.stale = m.StaleKeys()
	res.counts = m.SignalCounts()
	res.windows = m.WindowsClosed()
	res.revSigs, res.revPairs = m.RevocationStats()
	return res
}

func (r diffResult) assertEqual(t *testing.T, name string, want diffResult) {
	t.Helper()
	if !reflect.DeepEqual(r.sigs, want.sigs) {
		t.Fatalf("%s: signal stream diverges:\n got  %v\n want %v", name, r.sigs, want.sigs)
	}
	if !reflect.DeepEqual(r.stale, want.stale) {
		t.Fatalf("%s: stale set = %v, want %v", name, r.stale, want.stale)
	}
	if !reflect.DeepEqual(r.counts, want.counts) {
		t.Fatalf("%s: signal counts = %v, want %v", name, r.counts, want.counts)
	}
	if r.windows != want.windows {
		t.Fatalf("%s: windows closed = %d, want %d", name, r.windows, want.windows)
	}
	if r.revSigs != want.revSigs || r.revPairs != want.revPairs {
		t.Fatalf("%s: revocation stats = (%d,%d), want (%d,%d)",
			name, r.revSigs, r.revPairs, want.revSigs, want.revPairs)
	}
}

// TestPipelineDifferentialFaultAbsorption is the end-to-end differential
// guarantee: under a seeded non-lossy fault schedule (adjacent duplicates
// plus bounded reordering) the pipeline's absorption stages make the run
// byte-identical to the fault-free run — same signal stream, same final
// monitor state — at every shard count. Any divergence means a fault
// leaked into the engines.
func TestPipelineDifferentialFaultAbsorption(t *testing.T) {
	faults := &faultfeed.Config{
		Seed:         41,
		DupProb:      0.3,
		ReorderProb:  0.4,
		ReorderDepth: 3,
	}

	clean := runDifferential(t, 1, nil)
	if len(clean.sigs) == 0 {
		t.Fatal("clean baseline produced no signals; differential check is vacuous")
	}
	hasASPath := false
	for _, s := range clean.sigs {
		if s.Technique == TechBGPASPath {
			hasASPath = true
		}
	}
	if !hasASPath {
		t.Fatal("workload produced no AS-path signals; differential check is weak")
	}

	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cleanN := runDifferential(t, shards, nil)
			cleanN.assertEqual(t, "clean run", clean)
			faulted := runDifferential(t, shards, faults)
			faulted.assertEqual(t, "faulted run", clean)
		})
	}
}
