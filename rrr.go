// Package rrr implements the staleness-detection system of "Reduce, Reuse,
// Recycle: Repurposing Existing Measurements to Identify Stale Traceroutes"
// (Giotsas et al., IMC 2020): it maintains a corpus of traceroutes and
// flags entries that are likely out-of-date — without issuing any
// measurements — by passively monitoring BGP update feeds and publicly
// available traceroutes.
//
// The package is a facade over the implementation packages:
//
//   - Monitor wires the six signal techniques (§4.1.2–§4.2.3), the
//     calibrator (§4.3.1), and signal revocation (§4.3.2) behind a small
//     API: feed BGP updates and public traceroutes in, track corpus
//     traceroutes, read staleness signals out.
//   - The internal packages provide the substrates: BGP models and codecs,
//     traceroute parsing and processing, border mapping, geolocation,
//     anomaly detection, the evaluation harness, and a deterministic
//     Internet simulator used by the benchmarks.
//
// A minimal session:
//
//	mon := rrr.NewMonitor(rrr.Options{Mapper: m, Aliases: aliases})
//	mon.ObserveBGP(update)          // prime and stream collector feeds
//	mon.Track(corpusTraceroute)     // register the corpus
//	mon.ObservePublic(publicTrace)  // stream public traceroutes
//	sigs := mon.CloseWindow(ws)     // per 15-minute window
//	if mon.Stale(key) { ... }       // reissue, prune, or distrust
package rrr

import (
	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/core"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// Re-exported core vocabulary. External users interact with these; the
// internal packages carry the implementations.
type (
	// Signal is a staleness prediction signal (§4).
	Signal = core.Signal
	// Technique identifies which of the six techniques fired.
	Technique = core.Technique
	// Config tunes windows, calibration, revocation, and engine
	// parallelism (Shards; 0 = GOMAXPROCS, 1 = serial).
	Config = core.Config
	// Registration is a potential signal covering part of a traceroute.
	Registration = core.Registration
	// PlanItem is one refresh-plan selection with its ranking attributes
	// (§4.3.1), as returned by Monitor.PlanRefreshDetailed.
	PlanItem = core.PlanItem
	// Update is one BGP update from a collector vantage point.
	Update = bgp.Update
	// ASN is an autonomous system number.
	ASN = bgp.ASN
	// Community is a 32-bit BGP community.
	Community = bgp.Community
	// Prefix is an IPv4 prefix.
	Prefix = trie.Prefix
	// Traceroute is one measured path.
	Traceroute = traceroute.Traceroute
	// Key identifies a (source, destination) pair.
	Key = traceroute.Key
	// Hop is a traceroute hop.
	Hop = traceroute.Hop
	// Mapper resolves hop addresses to ASes and IXPs.
	Mapper = traceroute.Mapper
	// AliasOracle resolves interface addresses to routers.
	AliasOracle = bordermap.AliasOracle
	// Geolocator resolves addresses to city identifiers.
	Geolocator = core.Geolocator
	// RelOracle answers AS relationship queries.
	RelOracle = core.RelOracle
	// ChangeClass classifies a path change per §3.
	ChangeClass = bordermap.ChangeClass
	// Entry is a processed corpus traceroute.
	Entry = corpus.Entry
)

// Technique values (the rows of Table 2).
const (
	TechBGPASPath     = core.TechBGPASPath
	TechBGPCommunity  = core.TechBGPCommunity
	TechBGPBurst      = core.TechBGPBurst
	TechTraceSubpath  = core.TechTraceSubpath
	TechTraceBorder   = core.TechTraceBorder
	TechIXPMembership = core.TechIXPMembership
)

// Change classes (§3 granularities).
const (
	Unchanged    = bordermap.Unchanged
	BorderChange = bordermap.BorderChange
	ASChange     = bordermap.ASChange
)

// DefaultConfig mirrors the paper's parameters: 15-minute windows, l=30
// calibration windows, revocation enabled.
func DefaultConfig() Config { return core.DefaultConfig() }

// SignalLess reports whether a orders before b in the engine's canonical
// per-window emission order; merging partitioned streams with it
// reproduces single-engine output byte for byte.
func SignalLess(a, b Signal) bool { return core.SignalLess(a, b) }

// MakeCommunity builds a community from the defining AS and value.
func MakeCommunity(as ASN, value uint16) Community { return bgp.MakeCommunity(as, value) }

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (Prefix, error) { return trie.ParsePrefix(s) }

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (uint32, error) { return trie.ParseIP(s) }

// FormatIP renders a dotted-quad IPv4 address.
func FormatIP(ip uint32) string { return trie.FormatIP(ip) }
