package rrr

import "rrr/internal/obs"

// Metric handles for the facade layer (Pipeline and Monitor), resolved
// once at package init so the ingestion hot path touches only atomics.
// Everything lands in obs.Default, which cmd/rrrd serves at GET /metrics.
//
// Gauges describe the most recently constructed Monitor/Pipeline in the
// process — the daemon deployment shape — while counters are cumulative
// across all instances (multiple monitors in one test binary share them).
var (
	metPipeUpdates     = obs.Default.Counter("rrr_pipeline_updates_total")
	metPipeTraces      = obs.Default.Counter("rrr_pipeline_traces_total")
	metPipeWindows     = obs.Default.Counter("rrr_pipeline_windows_closed_total")
	metPipeUpdateQueue = obs.Default.Gauge("rrr_pipeline_update_queue_depth")
	metPipeTraceQueue  = obs.Default.Gauge("rrr_pipeline_trace_queue_depth")
	metPipeStall       = obs.Default.Histogram("rrr_pipeline_merge_stall_seconds", nil)
	metPipeErrBGP      = obs.Default.Counter("rrr_pipeline_feed_errors_total", "feed", "bgp")
	metPipeErrTrace    = obs.Default.Counter("rrr_pipeline_feed_errors_total", "feed", "traceroute")

	metFeedBGP   = newFeedMetrics("bgp")
	metFeedTrace = newFeedMetrics("traceroute")

	metMonTracked   = obs.Default.Gauge("rrr_monitor_tracked_pairs")
	metMonStale     = obs.Default.Gauge("rrr_monitor_stale_pairs")
	metMonWindows   = obs.Default.Counter("rrr_monitor_windows_closed_total")
	metMonRefreshes = obs.Default.Counter("rrr_monitor_refreshes_total")

	// metMonSignals is indexed by Technique (values 0..5), one labeled
	// series per row of the paper's Table 2.
	metMonSignals = func() []*obs.Counter {
		techs := []Technique{
			TechBGPASPath, TechBGPCommunity, TechBGPBurst,
			TechTraceSubpath, TechTraceBorder, TechIXPMembership,
		}
		out := make([]*obs.Counter, len(techs))
		for _, t := range techs {
			out[int(t)] = obs.Default.Counter("rrr_monitor_signals_total", "technique", t.String())
		}
		return out
	}()
)

// feedMetrics groups the per-feed supervisor counters introduced with the
// self-healing pipeline: retry attempts, faults fully absorbed (recovery
// completed with no duplicated or dropped signals), feeds declared dead,
// plus the absorption machinery's own accounting (adjacent duplicates
// dropped, records delivered out of arrival order, records skipped as
// already-ingested replay during a window-aligned resume).
type feedMetrics struct {
	retries   *obs.Counter
	absorbed  *obs.Counter
	dead      *obs.Counter
	dups      *obs.Counter
	reordered *obs.Counter
	replayed  *obs.Counter
	up        *obs.Gauge
}

func newFeedMetrics(feed string) *feedMetrics {
	return &feedMetrics{
		retries:   obs.Default.Counter("rrr_pipeline_feed_retries_total", "feed", feed),
		absorbed:  obs.Default.Counter("rrr_pipeline_faults_absorbed_total", "feed", feed),
		dead:      obs.Default.Counter("rrr_pipeline_feeds_dead_total", "feed", feed),
		dups:      obs.Default.Counter("rrr_pipeline_dup_records_dropped_total", "feed", feed),
		reordered: obs.Default.Counter("rrr_pipeline_reordered_records_total", "feed", feed),
		replayed:  obs.Default.Counter("rrr_pipeline_replayed_records_total", "feed", feed),
		up:        obs.Default.Gauge("rrr_pipeline_feed_up", "feed", feed),
	}
}

func init() {
	obs.Default.Help("rrr_pipeline_feed_retries_total", "feed retry attempts (in-place re-reads and reopen attempts) by the pipeline supervisor")
	obs.Default.Help("rrr_pipeline_faults_absorbed_total", "feed failures fully recovered from: the feed resumed and the open window replay matched exactly")
	obs.Default.Help("rrr_pipeline_feeds_dead_total", "feeds abandoned after exhausting the retry budget or failing permanently")
	obs.Default.Help("rrr_pipeline_dup_records_dropped_total", "adjacent byte-identical records dropped by transport-level dedup")
	obs.Default.Help("rrr_pipeline_reordered_records_total", "records delivered out of arrival order and restored by the reorder buffer")
	obs.Default.Help("rrr_pipeline_replayed_records_total", "already-ingested records skipped during window-aligned resume replay")
	obs.Default.Help("rrr_pipeline_feed_up", "1 while the feed is delivering records, 0 once it ended or died")
	obs.Default.Help("rrr_pipeline_updates_total", "BGP updates consumed by the pipeline merge loop")
	obs.Default.Help("rrr_pipeline_traces_total", "public traceroutes consumed by the pipeline merge loop")
	obs.Default.Help("rrr_pipeline_windows_closed_total", "signal windows closed by the pipeline (boundary, drain, and final closes)")
	obs.Default.Help("rrr_pipeline_update_queue_depth", "decoded BGP updates buffered ahead of the merge loop")
	obs.Default.Help("rrr_pipeline_trace_queue_depth", "decoded traceroutes buffered ahead of the merge loop")
	obs.Default.Help("rrr_pipeline_merge_stall_seconds", "time the merge loop spent blocked waiting on an empty feed channel")
	obs.Default.Help("rrr_pipeline_feed_errors_total", "feed decode errors that terminated a pipeline run")
	obs.Default.Help("rrr_monitor_tracked_pairs", "corpus pairs currently tracked by the monitor")
	obs.Default.Help("rrr_monitor_stale_pairs", "tracked pairs with active (unrevoked) staleness signals")
	obs.Default.Help("rrr_monitor_windows_closed_total", "signal-generation windows the monitor has closed")
	obs.Default.Help("rrr_monitor_refreshes_total", "fresh measurements recorded via RecordRefresh")
	obs.Default.Help("rrr_monitor_signals_total", "staleness prediction signals emitted, by technique")
}

// recordSignalMetrics bumps the per-technique counters for one window's
// signal batch.
func recordSignalMetrics(sigs []Signal) {
	for i := range sigs {
		if t := int(sigs[i].Technique); t >= 0 && t < len(metMonSignals) {
			metMonSignals[t].Inc()
		}
	}
}

// floorDiv divides rounding toward negative infinity, so pre-epoch
// (negative) timestamps land in the window that contains them instead of
// the one truncating division would pick. b must be positive.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}
