package rrr

import "rrr/internal/obs"

// Metric handles for the facade layer (Pipeline and Monitor), resolved
// once at package init so the ingestion hot path touches only atomics.
// Everything lands in obs.Default, which cmd/rrrd serves at GET /metrics.
//
// Gauges describe the most recently constructed Monitor/Pipeline in the
// process — the daemon deployment shape — while counters are cumulative
// across all instances (multiple monitors in one test binary share them).
var (
	metPipeUpdates     = obs.Default.Counter("rrr_pipeline_updates_total")
	metPipeTraces      = obs.Default.Counter("rrr_pipeline_traces_total")
	metPipeWindows     = obs.Default.Counter("rrr_pipeline_windows_closed_total")
	metPipeUpdateQueue = obs.Default.Gauge("rrr_pipeline_update_queue_depth")
	metPipeTraceQueue  = obs.Default.Gauge("rrr_pipeline_trace_queue_depth")
	metPipeStall       = obs.Default.Histogram("rrr_pipeline_merge_stall_seconds", nil)
	metPipeErrBGP      = obs.Default.Counter("rrr_pipeline_feed_errors_total", "feed", "bgp")
	metPipeErrTrace    = obs.Default.Counter("rrr_pipeline_feed_errors_total", "feed", "traceroute")

	metMonTracked   = obs.Default.Gauge("rrr_monitor_tracked_pairs")
	metMonStale     = obs.Default.Gauge("rrr_monitor_stale_pairs")
	metMonWindows   = obs.Default.Counter("rrr_monitor_windows_closed_total")
	metMonRefreshes = obs.Default.Counter("rrr_monitor_refreshes_total")

	// metMonSignals is indexed by Technique (values 0..5), one labeled
	// series per row of the paper's Table 2.
	metMonSignals = func() []*obs.Counter {
		techs := []Technique{
			TechBGPASPath, TechBGPCommunity, TechBGPBurst,
			TechTraceSubpath, TechTraceBorder, TechIXPMembership,
		}
		out := make([]*obs.Counter, len(techs))
		for _, t := range techs {
			out[int(t)] = obs.Default.Counter("rrr_monitor_signals_total", "technique", t.String())
		}
		return out
	}()
)

func init() {
	obs.Default.Help("rrr_pipeline_updates_total", "BGP updates consumed by the pipeline merge loop")
	obs.Default.Help("rrr_pipeline_traces_total", "public traceroutes consumed by the pipeline merge loop")
	obs.Default.Help("rrr_pipeline_windows_closed_total", "signal windows closed by the pipeline (boundary, drain, and final closes)")
	obs.Default.Help("rrr_pipeline_update_queue_depth", "decoded BGP updates buffered ahead of the merge loop")
	obs.Default.Help("rrr_pipeline_trace_queue_depth", "decoded traceroutes buffered ahead of the merge loop")
	obs.Default.Help("rrr_pipeline_merge_stall_seconds", "time the merge loop spent blocked waiting on an empty feed channel")
	obs.Default.Help("rrr_pipeline_feed_errors_total", "feed decode errors that terminated a pipeline run")
	obs.Default.Help("rrr_monitor_tracked_pairs", "corpus pairs currently tracked by the monitor")
	obs.Default.Help("rrr_monitor_stale_pairs", "tracked pairs with active (unrevoked) staleness signals")
	obs.Default.Help("rrr_monitor_windows_closed_total", "signal-generation windows the monitor has closed")
	obs.Default.Help("rrr_monitor_refreshes_total", "fresh measurements recorded via RecordRefresh")
	obs.Default.Help("rrr_monitor_signals_total", "staleness prediction signals emitted, by technique")
}

// recordSignalMetrics bumps the per-technique counters for one window's
// signal batch.
func recordSignalMetrics(sigs []Signal) {
	for i := range sigs {
		if t := int(sigs[i].Technique); t >= 0 && t < len(metMonSignals) {
			metMonSignals[t].Inc()
		}
	}
}

// floorDiv divides rounding toward negative infinity, so pre-epoch
// (negative) timestamps land in the window that contains them instead of
// the one truncating division would pick. b must be positive.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}
