package rrr

import (
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"rrr/internal/bgp"
)

// memLog is an in-memory RecordLog: it captures the merged ingestion order
// the pipeline would hand a real WAL, optionally failing on cue.
type memLog struct {
	recs       []memRec
	windows    []int64
	failAfter  int // fail the append that would be number failAfter+1
	failErr    error
	windowErr  error
}

type memRec struct {
	u  *Update
	tr *Traceroute
}

func (l *memLog) AppendUpdate(u Update) error {
	if l.failErr != nil && len(l.recs) >= l.failAfter {
		return l.failErr
	}
	l.recs = append(l.recs, memRec{u: &u})
	return nil
}

func (l *memLog) AppendTrace(t *Traceroute) error {
	if l.failErr != nil && len(l.recs) >= l.failAfter {
		return l.failErr
	}
	l.recs = append(l.recs, memRec{tr: t})
	return nil
}

func (l *memLog) WindowClosed(ws int64) error {
	l.windows = append(l.windows, ws)
	return l.windowErr
}

// logRun runs the clean pipeline with a capturing log and returns it.
func logRun(t *testing.T) *memLog {
	t.Helper()
	m, _ := recoveryMonitor(t)
	wlog := &memLog{}
	if err := RunPipeline(context.Background(), m, PipelineConfig{
		Updates: bgp.NewSliceSource(recoveryUpdates(t)),
		Sink:    func(Signal) {},
		WAL:     wlog,
	}); err != nil {
		t.Fatal(err)
	}
	return wlog
}

// TestRecoveryReplayResumesExactlyOnce is the heart of the crash story at
// the package-rrr level: for crash points throughout the log, replaying
// the logged prefix through Recovery and resuming the pipeline from the
// feed (re-covering the open window, positionally skipped) yields a signal
// stream and stale set identical to the uninterrupted run.
func TestRecoveryReplayResumesExactlyOnce(t *testing.T) {
	wantSigs, wantStale := cleanRecoveryRun(t)
	wlog := logRun(t)
	if len(wlog.recs) != 100 {
		t.Fatalf("log captured %d records, want the full 100-record feed", len(wlog.recs))
	}
	if len(wlog.windows) == 0 {
		t.Fatal("pipeline never notified the log of a window close")
	}

	for _, cut := range []int{1, 2, 17, 57, 89, 99, 100} {
		m, _ := recoveryMonitor(t)
		var sigs []Signal
		rec := NewRecovery(m, func(s Signal) { sigs = append(sigs, s) })
		for _, r := range wlog.recs[:cut] {
			if r.u != nil {
				rec.ObserveUpdate(*r.u)
			} else {
				rec.ObserveTrace(r.tr)
			}
		}
		resume, stats := rec.Finish()
		if stats.Updates != cut {
			t.Fatalf("cut %d: replay observed %d updates", cut, stats.Updates)
		}
		if stats.Skipped != 0 {
			t.Fatalf("cut %d: replay skipped %d records with no snapshot watermark", cut, stats.Skipped)
		}
		// The feed restarts from its beginning, as the daemon's simulated
		// feeds do; the skip wrapper fast-forwards to the open window and
		// the pipeline's positional replay drops the re-delivered records
		// the recovery already ingested.
		err := RunPipeline(context.Background(), m, PipelineConfig{
			Updates: SkipUpdatesBefore(bgp.NewSliceSource(recoveryUpdates(t)), resume.WindowStart),
			Sink:    func(s Signal) { sigs = append(sigs, s) },
			Resume:  resume,
		})
		if err != nil {
			t.Fatalf("cut %d: resumed pipeline: %v", cut, err)
		}
		if !reflect.DeepEqual(sigs, wantSigs) {
			t.Fatalf("cut %d: signal stream diverges from clean run:\n got  %v\n want %v", cut, sigs, wantSigs)
		}
		if !reflect.DeepEqual(m.StaleKeys(), wantStale) {
			t.Fatalf("cut %d: stale set = %v, want %v", cut, m.StaleKeys(), wantStale)
		}
	}
}

// TestRecoverySkipsSnapshotCovered: records before a restored snapshot's
// open window are already rolled into the monitor; replaying them again
// would double-count, so Recovery counts and drops them.
func TestRecoverySkipsSnapshotCovered(t *testing.T) {
	wlog := logRun(t)

	// Run the first 40 windows and snapshot there.
	src, _ := recoveryMonitor(t)
	for _, r := range wlog.recs {
		if r.u != nil && r.u.Time < 40*900 {
			src.ObserveBGP(*r.u)
		}
	}
	src.Advance(40 * 900) // close windows up to the snapshot point
	snap := src.Snapshot()
	if !snap.Opened {
		t.Fatal("snapshot monitor never opened a window")
	}

	m, _ := recoveryMonitor(t)
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rec := NewRecovery(m, nil)
	for _, r := range wlog.recs {
		if r.u != nil {
			rec.ObserveUpdate(*r.u)
		} else {
			rec.ObserveTrace(r.tr)
		}
	}
	resume, stats := rec.Finish()
	if stats.Skipped == 0 {
		t.Fatal("no records skipped below the snapshot watermark")
	}
	if stats.Updates+stats.Skipped != 100 {
		t.Fatalf("replayed %d + skipped %d != 100 logged records", stats.Updates, stats.Skipped)
	}
	wmStart, opened := src.WindowClock()
	if !opened {
		t.Fatal("source monitor lost its window clock")
	}
	if resume.WindowStart != 50*900 {
		t.Fatalf("resume window start = %d, want the final open window %d", resume.WindowStart, 50*900)
	}
	if wmStart >= resume.WindowStart {
		t.Fatalf("replay did not advance past the snapshot watermark (%d -> %d)", wmStart, resume.WindowStart)
	}
}

// TestPipelineWALAppendErrorFatal: a log that stops accepting records
// kills the run — continuing would let the monitor advance past records
// recovery could never replay — but the open window still drains.
func TestPipelineWALAppendErrorFatal(t *testing.T) {
	m, _ := recoveryMonitor(t)
	diskErr := errors.New("wal device gone")
	wlog := &memLog{failAfter: 30, failErr: diskErr}
	var sigs []Signal
	err := RunPipeline(context.Background(), m, PipelineConfig{
		Updates: bgp.NewSliceSource(recoveryUpdates(t)),
		Sink:    func(s Signal) { sigs = append(sigs, s) },
		WAL:     wlog,
	})
	if err == nil || !errors.Is(err, diskErr) {
		t.Fatalf("err = %v; want the wal append failure", err)
	}
	if !strings.Contains(err.Error(), "wal append") {
		t.Fatalf("err = %v; want it attributed to the wal tee", err)
	}
	if len(wlog.recs) != 30 {
		t.Fatalf("log holds %d records, want exactly the 30 accepted before the failure", len(wlog.recs))
	}
}

// TestPipelineWALWindowSyncErrorFatal: a failing window-close sync also
// surfaces — acknowledged durability that silently stopped being durable
// is the worst failure mode a WAL can have.
func TestPipelineWALWindowSyncErrorFatal(t *testing.T) {
	m, _ := recoveryMonitor(t)
	syncErr := errors.New("fsync: input/output error")
	err := RunPipeline(context.Background(), m, PipelineConfig{
		Updates: bgp.NewSliceSource(recoveryUpdates(t)),
		Sink:    func(Signal) {},
		WAL:     &memLog{windowErr: syncErr},
	})
	if err == nil || !errors.Is(err, syncErr) {
		t.Fatalf("err = %v; want the window sync failure", err)
	}
	if !strings.Contains(err.Error(), "wal window sync") {
		t.Fatalf("err = %v; want it attributed to the window sync", err)
	}
}

// TestSkipSourcesDropOnlyLeadingPrefix: the resume wrappers drop records
// before the resume point but only as a leading prefix — once a record
// passes, later out-of-order records flow through untouched (the pipeline
// owns ordering decisions, not the wrapper).
func TestSkipSourcesDropOnlyLeadingPrefix(t *testing.T) {
	ups := []Update{
		announceUpd(t, 100, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 4}),
		announceUpd(t, 900, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 4}),
		announceUpd(t, 450, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 4}), // late, but past the prefix
	}
	src := SkipUpdatesBefore(bgp.NewSliceSource(ups), 900)
	var times []int64
	for {
		u, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, u.Time)
	}
	if !reflect.DeepEqual(times, []int64{900, 450}) {
		t.Fatalf("skipped source delivered %v, want [900 450]", times)
	}

	ts := SkipTracesBefore(&sliceTraceSource{traces: []*Traceroute{
		trace(t, 100, "1.0.0.1", "4.0.0.9", "2.0.0.1"),
		trace(t, 1000, "1.0.0.1", "4.0.0.9", "2.0.0.1"),
	}}, 900)
	tr, err := ts.Read()
	if err != nil || tr.Time != 1000 {
		t.Fatalf("trace skip: got %v, %v; want the t=1000 trace", tr, err)
	}
	if _, err := ts.Read(); err != io.EOF {
		t.Fatalf("trace skip: err = %v, want EOF", err)
	}
}

type sliceTraceSource struct {
	traces []*Traceroute
	i      int
}

func (s *sliceTraceSource) Read() (*Traceroute, error) {
	if s.i >= len(s.traces) {
		return nil, io.EOF
	}
	t := s.traces[s.i]
	s.i++
	return t, nil
}

// TestRestoreAllOrNothing: a snapshot holding one unprocessable trace (an
// AS loop the snapshotting mapper never saw) must leave the target monitor
// exactly as it was — no partial corpus, no counters.
func TestRestoreAllOrNothing(t *testing.T) {
	good := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	looped := trace(t, 0, "1.0.0.1", "9.0.0.9", "2.0.0.1", "3.0.0.1", "2.0.0.2", "9.0.0.9")

	m := newTestMonitor(t)
	snap := &MonitorSnapshot{
		WindowSec: m.WindowSec(),
		Traces:    []*Traceroute{good, looped},
		Cur:       900,
		Opened:    true,
		SignalCounts: map[Technique]int{
			TechBGPASPath: 3,
		},
		WindowsClosed: 7,
	}
	err := m.Restore(snap)
	if err == nil {
		t.Fatal("restore of a snapshot with an AS-loop trace succeeded")
	}
	if !strings.Contains(err.Error(), looped.Key().String()) {
		t.Fatalf("err = %v; want it to name the failing pair", err)
	}
	if got := m.Tracked(); len(got) != 0 {
		t.Fatalf("failed restore left %d pairs tracked: %v", len(got), got)
	}
	if n := m.WindowsClosed(); n != 0 {
		t.Fatalf("failed restore bumped WindowsClosed to %d", n)
	}
	for tech, n := range m.SignalCounts() {
		if n != 0 {
			t.Fatalf("failed restore installed a %s count of %d", tech, n)
		}
	}
	if _, opened := m.WindowClock(); opened {
		t.Fatal("failed restore advanced the window clock")
	}

	// The same monitor then accepts a clean snapshot: nothing was wedged.
	snap.Traces = []*Traceroute{good}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := m.Tracked(); len(got) != 1 {
		t.Fatalf("clean restore tracked %d pairs, want 1", len(got))
	}
}
