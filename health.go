package rrr

import (
	"sort"
	"sync"
)

// FeedStatus is one feed's lifecycle state as seen by the pipeline
// supervisor.
type FeedStatus string

// Feed lifecycle states.
const (
	// FeedIdle: the feed was configured but the pipeline has not started
	// consuming it.
	FeedIdle FeedStatus = "idle"
	// FeedRunning: records are flowing.
	FeedRunning FeedStatus = "running"
	// FeedRetrying: the feed hit a transient error and the supervisor is
	// backing off before the next attempt.
	FeedRetrying FeedStatus = "retrying"
	// FeedEOF: the feed ended cleanly.
	FeedEOF FeedStatus = "eof"
	// FeedDead: the feed exhausted its retry budget (or failed with a
	// permanent error) and was abandoned.
	FeedDead FeedStatus = "dead"
)

// FeedHealth is a point-in-time snapshot of one feed's supervisor state,
// served by rrrd under /v1/stats so operators can see a degraded feed
// without scraping /metrics.
type FeedHealth struct {
	Feed     string     `json:"feed"`
	Status   FeedStatus `json:"status"`
	Retries  uint64     `json:"retries"`
	Absorbed uint64     `json:"faultsAbsorbed"`
	Replayed uint64     `json:"replayedRecords"`
	Diverged uint64     `json:"replayDivergences"`
	// ResumedFrom is the window-start timestamp of the most recent
	// window-aligned resume, meaningful when Retries > 0.
	ResumedFrom int64  `json:"resumedFrom,omitempty"`
	LastError   string `json:"lastError,omitempty"`
}

// PipelineHealth aggregates per-feed supervisor state. All methods are
// safe for concurrent use (reader goroutines note retries while the serving
// layer snapshots). The zero value is not usable; call NewPipelineHealth.
// A nil *PipelineHealth is a valid no-op sink.
type PipelineHealth struct {
	mu    sync.Mutex
	feeds map[string]*FeedHealth
}

// NewPipelineHealth returns an empty health registry.
func NewPipelineHealth() *PipelineHealth {
	return &PipelineHealth{feeds: make(map[string]*FeedHealth)}
}

// Snapshot returns a copy of every feed's state, sorted by feed name.
func (h *PipelineHealth) Snapshot() []FeedHealth {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]FeedHealth, 0, len(h.feeds))
	for _, f := range h.feeds {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Feed < out[j].Feed })
	return out
}

func (h *PipelineHealth) get(feed string) *FeedHealth {
	f, ok := h.feeds[feed]
	if !ok {
		f = &FeedHealth{Feed: feed, Status: FeedIdle}
		h.feeds[feed] = f
	}
	return f
}

func (h *PipelineHealth) setStatus(feed string, s FeedStatus, err error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.get(feed)
	f.Status = s
	if err != nil {
		f.LastError = err.Error()
	}
}

func (h *PipelineHealth) noteRetry(feed string, err error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.get(feed)
	f.Status = FeedRetrying
	f.Retries++
	if err != nil {
		f.LastError = err.Error()
	}
}

func (h *PipelineHealth) noteResume(feed string, from int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	f := h.get(feed)
	f.Status = FeedRunning
	f.ResumedFrom = from
}

func (h *PipelineHealth) noteReplayed(feed string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.get(feed).Replayed++
}

func (h *PipelineHealth) noteAbsorbed(feed string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.get(feed).Absorbed++
}

func (h *PipelineHealth) noteDiverged(feed string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.get(feed).Diverged++
}
