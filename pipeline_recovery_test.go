package rrr

import (
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/faultfeed"
)

// recoveryMonitor primes a fresh monitor with two VP routes and one tracked
// pair, the minimal state where an AS-path shift in the feed produces a
// signal.
func recoveryMonitor(t *testing.T) (*Monitor, Key) {
	t.Helper()
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	m.ObserveBGP(announceUpd(t, 0, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	return m, tr.Key()
}

// recoveryUpdates is a 100-record feed — two VPs, one announcement each per
// window for 50 windows, VP 5 shifting its path inside the monitored suffix
// at window 45 — with strictly increasing timestamps.
func recoveryUpdates(t *testing.T) []Update {
	t.Helper()
	var out []Update
	for w := int64(1); w <= 50; w++ {
		out = append(out, announceUpd(t, w*900+3, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))
		path := []ASN{5, 2, 3, 4}
		if w >= 45 {
			path = []ASN{5, 2, 9, 4}
		}
		out = append(out, announceUpd(t, w*900+7, "5.0.0.9", 5, "4.0.0.0/8", path))
	}
	return out
}

// cleanRecoveryRun is the fault-free baseline the recovery tests compare
// against: same monitor state, same feed, no faults, no retries.
func cleanRecoveryRun(t *testing.T) ([]Signal, []Key) {
	t.Helper()
	m, _ := recoveryMonitor(t)
	var sigs []Signal
	if err := Pipeline(context.Background(), m, bgp.NewSliceSource(recoveryUpdates(t)), nil,
		func(s Signal) { sigs = append(sigs, s) }); err != nil {
		t.Fatal(err)
	}
	if len(sigs) == 0 {
		t.Fatal("clean baseline produced no signals; recovery checks would be vacuous")
	}
	return sigs, m.StaleKeys()
}

// TestPipelineInPlaceRetryAbsorbs: a feed without a reopen factory that
// throws transient errors between records is retried in place; nothing is
// lost and nothing is duplicated, so the signal stream matches the clean run
// while the retry and absorption counters record the episodes.
func TestPipelineInPlaceRetryAbsorbs(t *testing.T) {
	wantSigs, wantStale := cleanRecoveryRun(t)

	retriesBefore := metFeedBGP.retries.Value()
	absorbedBefore := metFeedBGP.absorbed.Value()

	m, _ := recoveryMonitor(t)
	faulted := faultfeed.Updates(bgp.NewSliceSource(recoveryUpdates(t)),
		faultfeed.Config{Seed: 3, ErrEvery: 7})
	var sigs []Signal
	err := RunPipeline(context.Background(), m, PipelineConfig{
		Updates: faulted,
		Sink:    func(s Signal) { sigs = append(sigs, s) },
		Retry:   RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("in-place retries should have absorbed every transient: %v", err)
	}
	if !reflect.DeepEqual(sigs, wantSigs) {
		t.Fatalf("faulted signal stream diverges from clean run:\n got  %v\n want %v", sigs, wantSigs)
	}
	if !reflect.DeepEqual(m.StaleKeys(), wantStale) {
		t.Fatalf("faulted stale set = %v, want %v", m.StaleKeys(), wantStale)
	}
	if d := metFeedBGP.retries.Value() - retriesBefore; d == 0 {
		t.Fatal("rrr_pipeline_feed_retries_total did not record the in-place retries")
	}
	if d := metFeedBGP.absorbed.Value() - absorbedBefore; d == 0 {
		t.Fatal("rrr_pipeline_faults_absorbed_total did not record the recoveries")
	}
}

// TestPipelineRetriesExhaustStillDrains extends TestPipelineFeedErrorDrain
// to the retrying pipeline: a transient error that persists through the
// whole in-place retry budget still drains the open window (the buffered
// change surfaces as a signal) and still reports the failure.
func TestPipelineRetriesExhaustStillDrains(t *testing.T) {
	m, key := recoveryMonitor(t)
	m.Advance(45 * 900)

	retriesBefore := metFeedBGP.retries.Value()
	us := &erroringUpdateSource{
		updates: []Update{announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4})},
		err:     faultfeed.Transient(io.ErrUnexpectedEOF),
	}
	var got []Signal
	err := RunPipeline(context.Background(), m, PipelineConfig{
		Updates: us,
		Sink:    func(s Signal) { got = append(got, s) },
		Retry:   RetryPolicy{MaxRetries: 2, Backoff: time.Microsecond},
	})
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v; want wrapped unexpected EOF", err)
	}
	if len(got) == 0 {
		t.Fatal("exhausted retries dropped the open window's signals")
	}
	if !m.Stale(key) {
		t.Fatal("pair not stale after feed-error drain")
	}
	if d := metFeedBGP.retries.Value() - retriesBefore; d != 2 {
		t.Fatalf("retries metric delta = %d, want the full budget of 2", d)
	}
}

// TestPipelineWindowAlignedResume: a feed with a reopen factory that breaks
// mid-stream twice is resumed from the last completed window each time, the
// already-ingested records are skipped as they replay, and the resulting
// signal stream is byte-identical to the fault-free run — the exactly-once
// recovery guarantee.
func TestPipelineWindowAlignedResume(t *testing.T) {
	wantSigs, wantStale := cleanRecoveryRun(t)

	retriesBefore := metFeedBGP.retries.Value()
	absorbedBefore := metFeedBGP.absorbed.Value()
	replayedBefore := metFeedBGP.replayed.Value()

	m, _ := recoveryMonitor(t)
	// Opens 1 and 2 deliver ten records and break; open 3 is clean.
	ru := faultfeed.NewReplayableUpdates(recoveryUpdates(t),
		faultfeed.ReplayConfig{FailOpens: 2, FailAfter: 10})
	health := NewPipelineHealth()
	var sigs []Signal
	err := RunPipeline(context.Background(), m, PipelineConfig{
		OpenUpdates: ru.Open,
		Sink:        func(s Signal) { sigs = append(sigs, s) },
		Retry:       RetryPolicy{MaxRetries: 5, Backoff: time.Millisecond},
		Health:      health,
	})
	if err != nil {
		t.Fatalf("supervised pipeline should have recovered: %v", err)
	}
	if !reflect.DeepEqual(sigs, wantSigs) {
		t.Fatalf("resumed signal stream diverges from clean run:\n got  %v\n want %v", sigs, wantSigs)
	}
	if !reflect.DeepEqual(m.StaleKeys(), wantStale) {
		t.Fatalf("resumed stale set = %v, want %v", m.StaleKeys(), wantStale)
	}
	if ru.Opens() != 3 {
		t.Fatalf("feed opened %d times, want 3 (initial + two resumes)", ru.Opens())
	}
	if d := metFeedBGP.retries.Value() - retriesBefore; d != 2 {
		t.Fatalf("retries metric delta = %d, want 2", d)
	}
	// Each break lands mid-window with two records already ingested there,
	// so each resume replays exactly those two before fresh data flows.
	if d := metFeedBGP.replayed.Value() - replayedBefore; d != 4 {
		t.Fatalf("replayed metric delta = %d, want 4", d)
	}
	if d := metFeedBGP.absorbed.Value() - absorbedBefore; d != 2 {
		t.Fatalf("absorbed metric delta = %d, want 2", d)
	}

	var bh *FeedHealth
	for _, f := range health.Snapshot() {
		if f.Feed == "bgp" {
			fh := f
			bh = &fh
		}
	}
	if bh == nil {
		t.Fatal("health snapshot has no bgp feed entry")
	}
	if bh.Status != FeedEOF {
		t.Fatalf("bgp feed status = %q, want %q", bh.Status, FeedEOF)
	}
	if bh.Retries != 2 || bh.Absorbed != 2 || bh.Replayed != 4 {
		t.Fatalf("bgp feed health = %+v, want retries 2, absorbed 2, replayed 4", bh)
	}
	// The second break happens inside window 9, so the last resume point is
	// that window's start.
	if bh.ResumedFrom != 9*900 {
		t.Fatalf("ResumedFrom = %d, want %d", bh.ResumedFrom, 9*900)
	}
}

// erroringTraceSource fails every Read with a fixed error.
type erroringTraceSource struct{ err error }

func (s *erroringTraceSource) Read() (*Traceroute, error) { return nil, s.err }

// TestPipelineDeadFeedContinues: with ContinueOnDeadFeed, a permanently
// failing traceroute feed is declared dead but the BGP feed keeps flowing —
// windows close, signals fire — and the dead feed's error surfaces only in
// the final return value (and immediately in health/metrics).
func TestPipelineDeadFeedContinues(t *testing.T) {
	deadBefore := metFeedTrace.dead.Value()
	retriesBefore := metFeedTrace.retries.Value()

	m, key := recoveryMonitor(t)
	permErr := errors.New("result archive lost")
	health := NewPipelineHealth()
	var sigs []Signal
	err := RunPipeline(context.Background(), m, PipelineConfig{
		Updates: bgp.NewSliceSource(recoveryUpdates(t)),
		Traces:  &erroringTraceSource{err: permErr},
		Sink:    func(s Signal) { sigs = append(sigs, s) },
		Retry:   RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond, ContinueOnDeadFeed: true},
		Health:  health,
	})
	if err == nil || !errors.Is(err, permErr) {
		t.Fatalf("err = %v; want the dead feed's error reported at the end", err)
	}
	if !strings.Contains(err.Error(), "traceroute feed") {
		t.Fatalf("err = %v; want it attributed to the traceroute feed", err)
	}
	found := false
	for _, s := range sigs {
		if s.Technique == TechBGPASPath && s.Key == key {
			found = true
		}
	}
	if !found {
		t.Fatalf("surviving BGP feed produced no AS-path signal (got %v)", sigs)
	}
	if d := metFeedTrace.dead.Value() - deadBefore; d != 1 {
		t.Fatalf("feeds_dead metric delta = %d, want 1", d)
	}
	// A permanent error must not burn retry budget.
	if d := metFeedTrace.retries.Value() - retriesBefore; d != 0 {
		t.Fatalf("retries metric delta = %d, want 0 for a permanent error", d)
	}
	for _, f := range health.Snapshot() {
		if f.Feed == "traceroute" {
			if f.Status != FeedDead {
				t.Fatalf("traceroute feed status = %q, want %q", f.Status, FeedDead)
			}
			if !strings.Contains(f.LastError, "result archive lost") {
				t.Fatalf("traceroute feed LastError = %q, want the permanent error", f.LastError)
			}
		}
	}
}

// TestPipelineCancelDuringBackoff: context cancellation preempts a backoff
// sleep — a pipeline stuck retrying a refusing feed with minute-scale
// backoff returns as soon as the context fires, not when the timer does.
func TestPipelineCancelDuringBackoff(t *testing.T) {
	m, _ := recoveryMonitor(t)
	ru := faultfeed.NewReplayableUpdates(recoveryUpdates(t),
		faultfeed.ReplayConfig{OpenErrs: 100})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := RunPipeline(ctx, m, PipelineConfig{
		OpenUpdates: ru.Open,
		Retry:       RetryPolicy{MaxRetries: 3, Backoff: time.Minute},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want context deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep was not preempted", elapsed)
	}
}
