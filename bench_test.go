package rrr

// One benchmark per table and figure of the paper's evaluation. Each bench
// drives the corresponding experiment runner at a reduced scale and reports
// the headline quantities as custom metrics; cmd/rrrbench runs the full
// paper-style output. Heavyweight runs are computed once and shared across
// the benches that read different quantities from the same experiment
// (Table 2 and Figs 1/6/13 all come from the retrospective run, as in the
// paper).

import (
	"sync"
	"testing"

	"rrr/internal/core"
	"rrr/internal/experiments"
)

func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Days = 5
	return sc
}

var (
	retroOnce sync.Once
	retroRes  *experiments.RetroResult

	diamondOnce sync.Once
	diamondRes  *experiments.DiamondsResult

	censusOnce sync.Once
	censusRes  *experiments.CensusResult
)

func retro() *experiments.RetroResult {
	retroOnce.Do(func() { retroRes = experiments.RunRetrospective(benchScale()) })
	return retroRes
}

func diamonds() *experiments.DiamondsResult {
	diamondOnce.Do(func() { diamondRes = experiments.RunDiamonds(benchScale()) })
	return diamondRes
}

func census() *experiments.CensusResult {
	censusOnce.Do(func() { censusRes = experiments.RunCensus(benchScale()) })
	return censusRes
}

// BenchmarkFig1PathChanges regenerates Fig 1: the fraction of corpus paths
// whose border-level and AS-level forms differ from the initial measurement
// over time.
func BenchmarkFig1PathChanges(b *testing.B) {
	var r *experiments.RetroResult
	for i := 0; i < b.N; i++ {
		r = retro()
	}
	if n := len(r.Fig1Border); n > 0 {
		b.ReportMetric(r.Fig1Border[n-1], "final-border-frac")
		b.ReportMetric(r.Fig1AS[n-1], "final-as-frac")
	}
}

// BenchmarkTable2PrecisionCoverage regenerates Table 2: per-technique signal
// counts, precision, and coverage for the retrospective evaluation.
func BenchmarkTable2PrecisionCoverage(b *testing.B) {
	var r *experiments.RetroResult
	for i := 0; i < b.N; i++ {
		r = retro()
	}
	b.ReportMetric(r.AllTechniques.Precision, "precision")
	b.ReportMetric(r.AllTechniques.CovAll, "coverage")
	b.ReportMetric(float64(r.AllTechniques.Signals), "signals")
}

// BenchmarkFig6PrecisionCoverageOverTime regenerates Fig 6: daily precision
// and coverage series.
func BenchmarkFig6PrecisionCoverageOverTime(b *testing.B) {
	var r *experiments.RetroResult
	for i := 0; i < b.N; i++ {
		r = retro()
	}
	if n := len(r.Fig6Precision); n > 0 {
		b.ReportMetric(r.Fig6Precision[n-1], "final-day-precision")
		b.ReportMetric(r.Fig6Coverage[n-1], "final-day-coverage")
	}
}

// BenchmarkFig7LiveEvaluation regenerates Fig 7: refresh precision under
// signal-driven versus random selection with a fixed daily budget.
func BenchmarkFig7LiveEvaluation(b *testing.B) {
	sc := benchScale()
	sc.Days = 4
	var r *experiments.LiveResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunLive(sc, 40)
	}
	b.ReportMetric(safeDiv(float64(r.SignalChanged), float64(r.SignalRefreshes)), "signal-precision")
	b.ReportMetric(safeDiv(float64(r.RandomChanged), float64(r.RandomRefreshes)), "random-precision")
}

// BenchmarkFig8BudgetSweep regenerates Fig 8: fraction of changes detected
// by signals, DTRACK, Sibyl, round-robin, and DTRACK+SIGNALS across probing
// budgets.
func BenchmarkFig8BudgetSweep(b *testing.B) {
	sc := benchScale()
	sc.Days = 4
	var r *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig8(sc, 150, []float64{0.0005, 0.002, 0.01})
	}
	last := len(r.PPS) - 1
	b.ReportMetric(r.Signals[0], "signals-lowbudget")
	b.ReportMetric(r.DTrack[0], "dtrack-lowbudget")
	b.ReportMetric(r.DTrackSignals[last], "dtrack+signals-high")
	b.ReportMetric(r.Optimal, "optimal")
}

// BenchmarkFig9LoadBalancedSignals regenerates Fig 9: signals per
// load-balanced versus non-load-balanced interdomain segment.
func BenchmarkFig9LoadBalancedSignals(b *testing.B) {
	var r *experiments.DiamondsResult
	for i := 0; i < b.N; i++ {
		r = diamonds()
	}
	b.ReportMetric(r.LBFlaggedFrac, "lb-flagged-frac")
	b.ReportMetric(r.NonLBFlaggedFrac, "nonlb-flagged-frac")
}

// BenchmarkFig10LoadBalancedPrecision regenerates Fig 10: per-segment
// precision for load-balanced versus non-load-balanced segments.
func BenchmarkFig10LoadBalancedPrecision(b *testing.B) {
	var r *experiments.DiamondsResult
	for i := 0; i < b.N; i++ {
		r = diamonds()
	}
	b.ReportMetric(r.LBMedianPrec, "lb-median-precision")
	b.ReportMetric(r.NonLBMedianPrec, "nonlb-median-precision")
}

// BenchmarkFig11ArchivalReuse regenerates Fig 11: fresh/stale/unknown
// classification of an accumulating archive plus UDM reuse.
func BenchmarkFig11ArchivalReuse(b *testing.B) {
	sc := benchScale()
	sc.Days = 4
	var r *experiments.ArchivalResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunArchival(sc, 400)
	}
	if n := len(r.Fresh); n > 0 {
		total := r.Fresh[n-1] + r.Stale[n-1] + r.DeadProbe[n-1] + r.Unknown[n-1]
		b.ReportMetric(safeDiv(float64(r.Fresh[n-1]), float64(total)), "final-fresh-frac")
	}
	b.ReportMetric(r.UDMSatisfiableFrac, "udm-satisfiable")
}

// BenchmarkFig12GeolocationValidation regenerates Fig 12: the shortest-ping
// pipeline validated against three reference databases.
func BenchmarkFig12GeolocationValidation(b *testing.B) {
	var r *experiments.GeoValidationResult
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r = experiments.RunGeoValidation(sc)
	}
	b.ReportMetric(r.Crowd.Exact, "crowd-exact")
	b.ReportMetric(r.General.Exact, "general-exact")
	b.ReportMetric(r.LocateRate, "located-frac")
}

// BenchmarkFig13CommunityPruning regenerates Fig 13: communities producing
// false positives get pruned over time.
func BenchmarkFig13CommunityPruning(b *testing.B) {
	var r *experiments.RetroResult
	for i := 0; i < b.N; i++ {
		r = retro()
	}
	if n := len(r.Fig13FPComms); n > 0 {
		b.ReportMetric(float64(r.Fig13FPComms[n-1]), "final-day-fp-comms")
	}
}

// BenchmarkFig14BorderIPSharing regenerates Fig 14: AS pairs per border IP.
func BenchmarkFig14BorderIPSharing(b *testing.B) {
	var r *experiments.CensusResult
	for i := 0; i < b.N; i++ {
		r = census()
	}
	b.ReportMetric(r.FracUsedByOver10Pairs, "frac-over-10-pairs")
	b.ReportMetric(float64(r.BorderIPs), "border-ips")
}

// BenchmarkFig15BorderIPVisibility regenerates Fig 15: paths per border IP,
// changed versus unchanged.
func BenchmarkFig15BorderIPVisibility(b *testing.B) {
	var r *experiments.CensusResult
	for i := 0; i < b.N; i++ {
		r = census()
	}
	b.ReportMetric(r.FracChangedInOver10, "changed-in-10+paths")
	b.ReportMetric(r.FracUnchangedInOver10, "unchanged-in-10+paths")
}

// BenchmarkFig16IPlane regenerates Fig 16: iPlane spliced-path staleness
// with and without signal pruning.
func BenchmarkFig16IPlane(b *testing.B) {
	sc := benchScale()
	sc.Days = 4
	var r *experiments.IPlaneResult
	for i := 0; i < b.N; i++ {
		r = experiments.RunIPlane(sc)
	}
	if n := len(r.InvalidUnpruned); n > 0 {
		b.ReportMetric(r.InvalidUnpruned[n-1], "invalid-unpruned")
		b.ReportMetric(r.InvalidPruned[n-1], "invalid-pruned")
		b.ReportMetric(r.RetainedValid[n-1], "retained-valid")
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// BenchmarkAblationTechniques quantifies each technique's contribution by
// rerunning the retrospective evaluation with one technique disabled at a
// time (the design-choice ablation DESIGN.md calls out; the paper's Table 2
// "unique" columns report the same effect from a single run).
func BenchmarkAblationTechniques(b *testing.B) {
	full := retro()
	techs := map[string]core.Technique{
		"no-aspath":  core.TechBGPASPath,
		"no-burst":   core.TechBGPBurst,
		"no-subpath": core.TechTraceSubpath,
	}
	for i := 0; i < b.N; i++ {
		for name, tech := range techs {
			sc := benchScale()
			sc.Days = 3
			sc.Disabled = []core.Technique{tech}
			r := experiments.RunRetrospective(sc)
			b.ReportMetric(r.AllTechniques.CovAll, name+"-coverage")
		}
	}
	b.ReportMetric(full.AllTechniques.CovAll, "full-coverage")
}
